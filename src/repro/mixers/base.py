"""Mixer interface.

A mixer in this package is a Hermitian operator ``H_M`` acting on a feasible
space, exposed through exactly the operations the QAOA engine needs:

* ``apply(psi, beta)`` — the unitary evolution ``exp(-i beta H_M) |psi>``,
  implemented without ever forming the matrix exponential (the paper's core
  trick: diagonalize once, then only diagonal phases plus basis changes are
  needed per layer),
* ``apply_hamiltonian(psi)`` — the plain matrix-vector product ``H_M |psi>``,
  needed by the analytic (autodiff-equivalent) gradients,
* ``initial_state()`` — the canonical QAOA starting state for this mixer
  (uniform superposition over the feasible space, i.e. ``|+>^n`` or a Dicke
  state), which is the highest-energy eigenstate of the standard mixers,
* ``matrix()`` — a dense matrix representation for testing and for arbitrary
  downstream use.

All mixers are stateless with respect to the statevector: they may own
pre-computed spectral data (created once, possibly loaded from a disk cache)
but never mutate their inputs unless an explicit ``out`` buffer is provided.
"""

from __future__ import annotations

import abc
import threading

import numpy as np

from ..backend import active_backend
from ..hilbert.subspace import FeasibleSpace

__all__ = ["Mixer", "DiagonalizedMixer"]


class Mixer(abc.ABC):
    """Abstract base class for QAOA mixer Hamiltonians."""

    #: The feasible space the mixer acts on.
    space: FeasibleSpace

    def __init__(self, space: FeasibleSpace, *, backend=None):
        self.space = space
        #: the array backend the mixer's dense kernels dispatch through when no
        #: workspace (which carries its own backend) is supplied
        self.backend = backend if backend is not None else active_backend()
        # Per-thread M=1 workspace backing the scalar entry points (which are
        # single-column calls of the batched kernels); thread-local because
        # concurrent angle scans may share one mixer.
        self._scalar_store = threading.local()

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of qubits."""
        return self.space.n

    @property
    def dim(self) -> int:
        """Dimension of the space the mixer acts on."""
        return self.space.dim

    # ------------------------------------------------------------------
    # required operations
    # ------------------------------------------------------------------
    # A mixer family implements EITHER the scalar pair (apply /
    # apply_hamiltonian) OR the batched pair (apply_batch /
    # apply_hamiltonian_batch); the base class derives the other direction.
    # The optimized families implement only the batched kernels — the scalar
    # entry points below are their M=1 column calls, so there is exactly one
    # code path per family and one place to port per array backend.

    def _scalar_workspace(self):
        """This thread's cached ``(dim, 1)`` workspace for the M=1 wrappers."""
        store = self._scalar_store
        workspace = getattr(store, "workspace", None)
        if workspace is None:
            from ..core.workspace import BatchedWorkspace

            workspace = store.workspace = BatchedWorkspace(self.dim, 1, backend=self.backend)
        return workspace

    def _scalar_via_batch(self, kernel, psi: np.ndarray, out: np.ndarray | None) -> np.ndarray:
        """Run a batched kernel on ``psi`` as a single-column batch.

        ``kernel(Psi, out, workspace)`` receives C-contiguous complex128
        ``(dim, 1)`` views; non-conforming ``psi``/``out`` buffers are staged
        through copies so the caller-visible contract (``out`` may alias
        ``psi``; ``psi`` is untouched otherwise) is preserved.
        """
        psi = self._check_state(psi)
        if psi.dtype != np.complex128 or not psi.flags.c_contiguous:
            psi = np.ascontiguousarray(psi, dtype=np.complex128)
        if out is None:
            out = np.empty(self.dim, dtype=np.complex128)
        elif out.shape != (self.dim,):
            raise ValueError(f"out has shape {out.shape}, expected ({self.dim},)")
        if out.dtype == np.complex128 and out.flags.c_contiguous:
            target = out
        else:
            target = np.empty(self.dim, dtype=np.complex128)
        kernel(psi.reshape(self.dim, 1), target.reshape(self.dim, 1), self._scalar_workspace())
        if target is not out:
            out[:] = target
        return out

    def apply(
        self,
        psi: np.ndarray,
        beta: float,
        out: np.ndarray | None = None,
        *,
        scratch: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return ``exp(-i beta H_M) |psi>``.

        ``psi`` is a complex statevector of length :attr:`dim` in the feasible
        space's canonical basis order.  If ``out`` is given it is used as the
        destination buffer (it may alias ``psi``); otherwise a new array is
        returned.  ``psi`` itself is never modified unless it aliases ``out``.

        This base implementation is the M=1 column call of
        :meth:`apply_batch`, served from a cached per-thread workspace so it
        allocates nothing when ``out`` is supplied.  ``scratch`` is accepted
        for backward compatibility and ignored — scratch now comes from that
        workspace.
        """
        del scratch  # superseded by the per-thread M=1 workspace
        if type(self).apply_batch is Mixer.apply_batch:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither apply nor apply_batch"
            )
        betas = np.atleast_1d(np.asarray(beta, dtype=np.float64))
        return self._scalar_via_batch(
            lambda Psi, target, workspace: self.apply_batch(
                Psi, betas, out=target, workspace=workspace
            ),
            psi,
            out,
        )

    def apply_hamiltonian(
        self,
        psi: np.ndarray,
        out: np.ndarray | None = None,
        *,
        scratch: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return ``H_M |psi>`` (used by analytic gradients).

        The M=1 column call of :meth:`apply_hamiltonian_batch`; see
        :meth:`apply` for the buffer contract.
        """
        del scratch  # superseded by the per-thread M=1 workspace
        if type(self).apply_hamiltonian_batch is Mixer.apply_hamiltonian_batch:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither apply_hamiltonian "
                f"nor apply_hamiltonian_batch"
            )
        return self._scalar_via_batch(
            lambda Psi, target, workspace: self.apply_hamiltonian_batch(
                Psi, out=target, workspace=workspace
            ),
            psi,
            out,
        )

    # ------------------------------------------------------------------
    # batched evaluation
    # ------------------------------------------------------------------
    def apply_batch(
        self,
        Psi: np.ndarray,
        betas: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Return ``exp(-i beta_j H_M) |psi_j>`` for every column ``j`` of ``Psi``.

        ``Psi`` is a ``(dim, M)`` matrix whose columns are M independent
        statevectors and ``betas`` holds one angle per column (multi-angle
        mixers instead take a ``(num_angles, M)`` matrix).  ``out`` may alias
        ``Psi``.  ``workspace`` optionally supplies pre-allocated scratch (a
        :class:`~repro.core.workspace.BatchedWorkspace` of matching
        dimension).

        This base implementation loops over columns through :meth:`apply` —
        the fallback for externally defined scalar-only mixers (e.g. the
        Trotter baselines).  The optimized families override it with BLAS-3 /
        fully vectorized batch kernels, which is where the batched evaluation
        engine's throughput comes from.
        """
        if type(self).apply is Mixer.apply:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither apply nor apply_batch"
            )
        Psi = np.asarray(Psi)
        if Psi.ndim != 2 or Psi.shape[0] != self.dim:
            raise ValueError(
                f"batched statevectors have shape {Psi.shape}, expected "
                f"({self.dim}, M) for {self!r}"
            )
        M = Psi.shape[1]
        betas = np.asarray(betas, dtype=np.float64)
        if betas.ndim == 0:
            betas = np.full(M, float(betas))
        if betas.shape[-1] != M:
            raise ValueError(f"betas have shape {betas.shape}, expected last axis of length {M}")
        if out is None:
            out = np.empty((self.dim, M), dtype=np.complex128)
        column = np.empty(self.dim, dtype=np.complex128)
        result = np.empty(self.dim, dtype=np.complex128)
        for j in range(M):
            column[:] = Psi[:, j]
            beta_j = betas[..., j]
            self.apply(column, float(beta_j) if beta_j.ndim == 0 else beta_j, out=result)
            out[:, j] = result
        return out

    def apply_hamiltonian_batch(
        self,
        Psi: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Return ``H_M |psi_j>`` for every column ``j`` of the ``(dim, M)`` batch.

        The batched analogue of :meth:`apply_hamiltonian` and the contract the
        batched adjoint-gradient engine relies on: one call produces the
        mixer-Hamiltonian product for all M statevectors at once, so each
        backward-pass round costs one batched kernel instead of M mat-vecs.
        ``out`` may alias ``Psi``; ``workspace`` optionally supplies
        pre-allocated scratch (a
        :class:`~repro.core.workspace.BatchedWorkspace` of matching
        dimension) so repeated calls allocate nothing.  ``Psi`` is never
        modified unless it aliases ``out``.

        This base implementation loops over columns through
        :meth:`apply_hamiltonian` (the scalar-only-mixer fallback); the
        optimized families override it with the same BLAS-3 / fully
        vectorized kernels as their :meth:`apply_batch`.
        """
        if type(self).apply_hamiltonian is Mixer.apply_hamiltonian:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither apply_hamiltonian "
                f"nor apply_hamiltonian_batch"
            )
        Psi = np.asarray(Psi)
        if Psi.ndim != 2 or Psi.shape[0] != self.dim:
            raise ValueError(
                f"batched statevectors have shape {Psi.shape}, expected "
                f"({self.dim}, M) for {self!r}"
            )
        M = Psi.shape[1]
        if out is None:
            out = np.empty((self.dim, M), dtype=np.complex128)
        column = np.empty(self.dim, dtype=np.complex128)
        result = np.empty(self.dim, dtype=np.complex128)
        for j in range(M):
            column[:] = Psi[:, j]
            self.apply_hamiltonian(column, out=result)
            out[:, j] = result
        return out

    def _check_batch(
        self, Psi: np.ndarray, out: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Validate a batched call; returns contiguous ``(Psi, out, M)``."""
        Psi = np.asarray(Psi)
        if Psi.ndim != 2 or Psi.shape[0] != self.dim:
            raise ValueError(
                f"batched statevectors have shape {Psi.shape}, expected "
                f"({self.dim}, M) for {self!r}"
            )
        M = Psi.shape[1]
        if Psi.dtype != np.complex128 or not Psi.flags.c_contiguous:
            Psi = np.ascontiguousarray(Psi, dtype=np.complex128)
        if out is None:
            out = np.empty((self.dim, M), dtype=np.complex128)
        elif out.shape != (self.dim, M):
            raise ValueError(f"out has shape {out.shape}, expected ({self.dim}, {M})")
        return Psi, out, M

    @staticmethod
    def _batch_angles(betas: np.ndarray, M: int) -> np.ndarray:
        """Normalize per-column angles to a float ``(M,)`` vector."""
        betas = np.asarray(betas, dtype=np.float64)
        if betas.ndim == 0:
            betas = np.full(M, float(betas))
        if betas.shape != (M,):
            raise ValueError(f"betas have shape {betas.shape}, expected ({M},)")
        return betas

    @abc.abstractmethod
    def matrix(self) -> np.ndarray:
        """Dense ``dim x dim`` matrix of ``H_M`` in the feasible-space basis."""

    # ------------------------------------------------------------------
    # defaults
    # ------------------------------------------------------------------
    def initial_state(self, dtype=np.complex128) -> np.ndarray:
        """Default QAOA initial state: uniform superposition over the space."""
        return self.space.initial_state(dtype=dtype)

    def apply_inverse(
        self, psi: np.ndarray, beta: float, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Return ``exp(+i beta H_M) |psi>`` (the inverse evolution)."""
        return self.apply(psi, -beta, out=out)

    def cache_key(self) -> str:
        """A string identifying the mixer's pre-computed data for disk caching."""
        return f"{type(self).__name__}_n{self.n}_{self.space.name}"

    def _check_state(self, psi: np.ndarray) -> np.ndarray:
        psi = np.asarray(psi)
        if psi.shape != (self.dim,):
            raise ValueError(
                f"statevector has shape {psi.shape}, expected ({self.dim},) for {self!r}"
            )
        return psi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, dim={self.dim})"


class DiagonalizedMixer(Mixer):
    """A mixer represented by an explicit eigendecomposition ``H_M = V D V^†``.

    This is the general-purpose path of the paper's pre-computation step: the
    decomposition is computed (or loaded from a cache) once, and every layer
    application is two dense matrix-vector products plus a diagonal phase:

        exp(-i beta H_M) |psi> = V exp(-i beta D) V^† |psi> .

    Subclasses (Clique, Ring, arbitrary Hermitian mixers) provide the
    eigenvectors ``V`` and eigenvalues ``D``.
    """

    def __init__(self, space: FeasibleSpace, eigenvalues: np.ndarray, eigenvectors: np.ndarray):
        super().__init__(space)
        eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
        eigenvectors = np.asarray(eigenvectors)
        if eigenvalues.shape != (space.dim,):
            raise ValueError(f"eigenvalues have shape {eigenvalues.shape}, expected ({space.dim},)")
        if eigenvectors.shape != (space.dim, space.dim):
            raise ValueError(
                f"eigenvectors have shape {eigenvectors.shape}, expected "
                f"({space.dim}, {space.dim})"
            )
        self.eigenvalues = eigenvalues
        self.eigenvectors = eigenvectors
        # Basis-change factors materialized once, contiguous, in their natural
        # dtype.  A real eigenbasis (real-symmetric mixers such as XY) keeps
        # float64 factors: basis changes then run as real GEMMs over the
        # interleaved re/im view — half the flops of a complex GEMM and no
        # per-call promotion of V to complex128.
        self._real_basis = bool(np.isrealobj(eigenvectors))
        dtype = np.float64 if self._real_basis else np.complex128
        self._V = np.ascontiguousarray(eigenvectors, dtype=dtype)
        self._Vdag = np.ascontiguousarray(self._V.conj().T)
        # historical name, still used by matrix() and external callers
        self._eigenvectors_dag = self._Vdag
        # Per-call scratch (the uniform-batch phase vector) so repeated layer
        # applications allocate nothing.  Kept thread-local: concurrent angle
        # scans sharing one mixer would otherwise interleave writes to shared
        # scratch and corrupt results.
        self._scratch_store = threading.local()

    def _scratches(self) -> tuple[np.ndarray, np.ndarray]:
        """This thread's (coeff, phase) scratch vectors, allocated on first use."""
        store = self._scratch_store
        try:
            return store.coeff, store.phase
        except AttributeError:
            store.coeff = np.empty(self.dim, dtype=np.complex128)
            store.phase = np.empty(self.dim, dtype=np.complex128)
            return store.coeff, store.phase

    def _basis_change(
        self, factor: np.ndarray, src: np.ndarray, out: np.ndarray, backend=None
    ) -> np.ndarray:
        """``factor @ src`` for complex ``src``/``out``, allocation-free.

        With a real eigenbasis and contiguous operands the product runs as a
        single real GEMM over the interleaved re/im float view, which is exact
        (the factor is real) and avoids per-call complex promotion of the
        factor.  ``out`` must not alias ``src``.  The GEMM dispatches through
        ``backend`` (default: the mixer's own).
        """
        bk = self.backend if backend is None else backend
        if self._real_basis and src.flags.c_contiguous and out.flags.c_contiguous:
            bk.real_gemm(factor, src, out)
        else:
            bk.matmul(factor, src, out=out)
        return out

    def apply_batch(
        self,
        Psi: np.ndarray,
        betas: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Batched layer: two GEMMs around a per-column eigenphase multiply."""
        Psi, out, M = self._check_batch(Psi, out)
        betas = self._batch_angles(betas, M)
        if workspace is not None:
            coeffs = workspace.scratch(M)
            phases = workspace.phase(M)
            bk = workspace.backend
        else:
            coeffs = np.empty((self.dim, M), dtype=np.complex128)
            phases = np.empty((self.dim, M), dtype=np.complex128)
            bk = self.backend
        self._basis_change(self._Vdag, Psi, coeffs, bk)
        if M > 0 and betas.min() == betas.max():
            # Uniform batch (every column shares one angle): a single phase
            # vector broadcasts across columns, skipping the (dim, M) outer.
            phase_vec = self._scratches()[1]
            np.multiply(self.eigenvalues, -1j * float(betas[0]), out=phase_vec)
            np.exp(phase_vec, out=phase_vec)
            coeffs *= phase_vec[:, None]
        else:
            np.multiply(self.eigenvalues[:, None], -1j * betas[None, :], out=phases)
            np.exp(phases, out=phases)
            coeffs *= phases
        self._basis_change(self._V, coeffs, out, bk)
        return out

    def apply_hamiltonian_batch(
        self,
        Psi: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Batched ``H_M`` product: two GEMMs around an eigenvalue multiply."""
        Psi, out, M = self._check_batch(Psi, out)
        if workspace is not None:
            coeffs = workspace.scratch(M)
            bk = workspace.backend
        else:
            coeffs = np.empty((self.dim, M), dtype=np.complex128)
            bk = self.backend
        self._basis_change(self._Vdag, Psi, coeffs, bk)
        coeffs *= self.eigenvalues[:, None]
        self._basis_change(self._V, coeffs, out, bk)
        return out

    def matrix(self) -> np.ndarray:
        return (self.eigenvectors * self.eigenvalues[None, :]) @ self._eigenvectors_dag

    def spectral_data(self) -> tuple[np.ndarray, np.ndarray]:
        """The cached ``(eigenvalues, eigenvectors)`` pair."""
        return self.eigenvalues, self.eigenvectors
