"""The Grover mixer.

The Grover mixer (Bärtschi & Eidenbenz 2020; Sec. 2.4 of the paper) is the
rank-one projector onto the initial state,

    H_G = |psi0><psi0| ,

where ``|psi0>`` is the uniform superposition over the feasible space (the
full hypercube for unconstrained problems, a Dicke state for Hamming-weight
constrained ones).  Its exponential has a closed form,

    exp(-i beta H_G) = I + (e^{-i beta} - 1) |psi0><psi0| ,

so one layer costs a single inner product and an axpy — ``O(dim)`` with a tiny
constant, no transforms or matrix products at all.  Because the mixer only
couples states through their overlap with ``|psi0>``, amplitudes of states
with equal objective value remain equal throughout the evolution ("fair
sampling"), which is what the compressed simulation in :mod:`repro.grover`
exploits.
"""

from __future__ import annotations

import numpy as np

from ..hilbert.subspace import DickeSpace, FeasibleSpace, FullSpace
from .base import Mixer

__all__ = ["GroverMixer", "grover_mixer", "grover_mixer_dicke"]


class GroverMixer(Mixer):
    """Rank-one Grover mixer ``H_G = |psi0><psi0|`` over an arbitrary feasible space."""

    def __init__(self, space: FeasibleSpace, initial: np.ndarray | None = None):
        super().__init__(space)
        if initial is None:
            initial = space.initial_state()
        initial = np.asarray(initial, dtype=np.complex128)
        if initial.shape != (space.dim,):
            raise ValueError(f"initial state has shape {initial.shape}, expected ({space.dim},)")
        norm = np.linalg.norm(initial)
        if not np.isclose(norm, 1.0):
            if norm == 0:
                raise ValueError("initial state must be non-zero")
            initial = initial / norm
        self.psi0 = initial
        self._psi0_conj = initial.conj()

    def apply_batch(
        self,
        Psi: np.ndarray,
        betas: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Batched rank-one update in ``O(dim * M)``.

        One GEMV collects all M overlaps ``<psi0|psi_j>`` at once, then a
        single outer-product update applies every column's phase factor — no
        transforms or matrix products, matching the scalar path's cost per
        statevector.
        """
        Psi, out, M = self._check_batch(Psi, out)
        betas = self._batch_angles(betas, M)
        bk = workspace.backend if workspace is not None else self.backend
        overlaps = bk.matmul(self._psi0_conj, Psi)
        factors = (np.exp(-1j * betas) - 1.0) * overlaps
        if out is not Psi:
            out[:] = Psi
        if workspace is not None:
            update = np.multiply(self.psi0[:, None], factors[None, :], out=workspace.scratch(M))
            out += update
        else:
            out += self.psi0[:, None] * factors[None, :]
        return out

    def apply_hamiltonian_batch(
        self,
        Psi: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Batched rank-one product: one GEMV of overlaps, one outer product."""
        Psi, out, M = self._check_batch(Psi, out)
        bk = workspace.backend if workspace is not None else self.backend
        overlaps = bk.matmul(self._psi0_conj, Psi)
        np.multiply(self.psi0[:, None], overlaps[None, :], out=out)
        return out

    def matrix(self) -> np.ndarray:
        return np.outer(self.psi0, self.psi0.conj())

    def initial_state(self, dtype=np.complex128) -> np.ndarray:
        return self.psi0.astype(dtype, copy=True)

    def cache_key(self) -> str:
        return f"GroverMixer_n{self.n}_{self.space.name}"


def grover_mixer(n: int) -> GroverMixer:
    """Grover mixer over the full ``2^n`` space (unconstrained problems)."""
    return GroverMixer(FullSpace(n))


def grover_mixer_dicke(n: int, k: int) -> GroverMixer:
    """Grover mixer over the Hamming-weight-``k`` Dicke subspace.

    The Grover mixer conserves Hamming weight (Sec. 2.4, property 1), so it is
    a valid constrained mixer when restricted to the feasible subspace.
    """
    return GroverMixer(DickeSpace(n, k))
