"""XY-interaction mixers on Hamming-weight-constrained (Dicke) subspaces.

The Clique and Ring mixers of Hadfield et al. (2019) are sums of two-qubit
XY interactions,

    H_M = sum_{(i,j) in P}  ( X_i X_j + Y_i Y_j ) ,

over an interaction pattern ``P`` (all pairs for the Clique mixer, nearest
neighbours on a cycle for the Ring mixer).  Each XY term swaps a 01 pair into
a 10 pair with amplitude 2 and annihilates 00/11 pairs, so the mixer conserves
Hamming weight and acts block-diagonally on Dicke subspaces.

Unlike the products-of-X mixers these do not diagonalize with single-qubit
rotations, so — exactly as the paper does — we restrict the operator to the
``C(n, k)``-dimensional feasible subspace, build that dense matrix once,
eigendecompose it (``H_M = V D V^T``; the matrix is real symmetric), and reuse
the factors for every layer and every angle.  The decomposition can be cached
to disk (Listing 2's ``file=`` option) via :mod:`repro.io.cache`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from ..hilbert.dicke import dicke_labels, rank_state
from ..hilbert.subspace import DickeSpace, FeasibleSpace
from ..io.cache import cached_eigendecomposition
from .base import DiagonalizedMixer

__all__ = [
    "xy_subspace_matrix",
    "XYMixer",
    "CliqueMixer",
    "RingMixer",
    "mixer_clique",
    "mixer_ring",
]


def xy_subspace_matrix(n: int, k: int, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
    """Dense matrix of ``sum_{(i,j)} (X_i X_j + Y_i Y_j)`` on the weight-``k`` subspace.

    The matrix is indexed by the canonical Dicke ordering of
    :func:`repro.hilbert.dicke.dicke_labels`.  Entry ``(a, b)`` is 2 for every
    interaction pair whose swap maps state ``b`` to state ``a``.
    """
    labels = dicke_labels(n, k)
    dim = len(labels)
    index = {int(label): idx for idx, label in enumerate(labels)}
    mat = np.zeros((dim, dim), dtype=np.float64)
    for a_idx, label in enumerate(labels):
        label = int(label)
        for i, j in pairs:
            bi = (label >> i) & 1
            bj = (label >> j) & 1
            if bi == bj:
                continue
            swapped = label ^ ((1 << i) | (1 << j))
            b_idx = index[swapped]
            # (X X + Y Y) |01> = 2 |10>, so each differing pair contributes 2.
            mat[b_idx, a_idx] += 2.0
    return mat


def _validate_pairs(n: int, pairs: Sequence[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    cleaned = []
    for i, j in pairs:
        i, j = int(i), int(j)
        if i == j:
            raise ValueError("XY interaction pairs must connect distinct qubits")
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"pair ({i},{j}) out of range for n={n}")
        cleaned.append((min(i, j), max(i, j)))
    if not cleaned:
        raise ValueError("at least one interaction pair is required")
    return tuple(sorted(set(cleaned)))


class XYMixer(DiagonalizedMixer):
    """General XY mixer restricted to a Dicke subspace, with cached spectral data."""

    def __init__(
        self,
        n: int,
        k: int,
        pairs: Sequence[tuple[int, int]],
        *,
        name: str = "xy",
        file: str | Path | None = None,
    ):
        space = DickeSpace(n, k)
        self.pairs = _validate_pairs(n, pairs)
        self.pattern_name = name
        self._file = Path(file) if file is not None else None
        key = self._make_key(n, k)
        eigenvalues, eigenvectors = cached_eigendecomposition(
            self._file, key, lambda: self._compute_decomposition(n, k)
        )
        # XY mixers are real symmetric, so the eigenbasis is real — coerce
        # complex-typed arrays from older disk caches back to float64 so the
        # real-GEMM fast path of DiagonalizedMixer is always taken.
        eigenvectors = np.asarray(eigenvectors)
        if np.iscomplexobj(eigenvectors):
            if np.abs(eigenvectors.imag).max() > 1e-12:
                raise ValueError(
                    f"cached eigenvectors for {key!r} have non-real entries; "
                    "the spectral cache is corrupted — delete it and rebuild"
                )
            eigenvectors = np.ascontiguousarray(eigenvectors.real)
        super().__init__(space, eigenvalues, eigenvectors)
        self.k = k

    def _make_key(self, n: int, k: int) -> str:
        return f"{self.pattern_name}_n{n}_k{k}_pairs{len(self.pairs)}"

    def _compute_decomposition(self, n: int, k: int) -> tuple[np.ndarray, np.ndarray]:
        mat = xy_subspace_matrix(n, k, self.pairs)
        eigenvalues, eigenvectors = np.linalg.eigh(mat)
        return eigenvalues, eigenvectors

    def _require_real_basis(self) -> None:
        if not self._real_basis:
            raise RuntimeError(
                f"{type(self).__name__} lost its real eigenbasis; spectral "
                "data was replaced after construction"
            )

    def apply_batch(
        self,
        Psi: np.ndarray,
        betas: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Batched XY layer: the two basis-change GEMMs run as real GEMMs.

        The constructor guarantees a real eigenbasis, so both GEMMs of the
        diagonalized batch path operate on the interleaved re/im float view —
        half the flops of complex GEMMs.  This override pins that invariant so
        a silent fall-back to the promoted complex path cannot creep in.
        """
        self._require_real_basis()
        return super().apply_batch(Psi, betas, out=out, workspace=workspace)

    def apply_hamiltonian_batch(
        self,
        Psi: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Batched ``H_M`` product with the same real-GEMM invariant as
        :meth:`apply_batch` (the batched adjoint pass calls this every round)."""
        self._require_real_basis()
        return super().apply_hamiltonian_batch(Psi, out=out, workspace=workspace)

    def cache_key(self) -> str:
        return self._make_key(self.n, self.k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.n}, k={self.k}, "
            f"pairs={len(self.pairs)}, dim={self.dim})"
        )


class CliqueMixer(XYMixer):
    """Complete-graph XY mixer ``sum_{i<j} X_i X_j + Y_i Y_j`` on the weight-``k`` subspace."""

    def __init__(self, n: int, k: int, *, file: str | Path | None = None):
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        super().__init__(n, k, pairs, name="clique", file=file)


class RingMixer(XYMixer):
    """Cyclic nearest-neighbour XY mixer ``sum_i X_i X_{i+1} + Y_i Y_{i+1}`` (indices mod n)."""

    def __init__(self, n: int, k: int, *, file: str | Path | None = None):
        if n < 2:
            raise ValueError("the ring mixer needs at least two qubits")
        pairs = [(i, (i + 1) % n) for i in range(n)]
        # On two qubits the "ring" degenerates to the single edge (0, 1).
        super().__init__(n, k, pairs, name="ring", file=file)


def mixer_clique(n: int, k: int, *, file: str | Path | None = None) -> CliqueMixer:
    """Convenience constructor mirroring the paper's ``mixer_clique(n, k; file=...)``."""
    return CliqueMixer(n, k, file=file)


def mixer_ring(n: int, k: int, *, file: str | Path | None = None) -> RingMixer:
    """Convenience constructor mirroring the paper's ``mixer_ring(n, k; file=...)``."""
    return RingMixer(n, k, file=file)
