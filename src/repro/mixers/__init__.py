"""Mixer Hamiltonians, all pre-diagonalized for fast repeated application."""

from .base import DiagonalizedMixer, Mixer
from .grover import GroverMixer, grover_mixer, grover_mixer_dicke
from .schedules import MixerSchedule
from .unitary import FixedUnitaryMixer, HermitianMixer, is_hermitian, is_unitary
from .xmixer import (
    MultiAngleXMixer,
    XMixer,
    mixer_x,
    transverse_field_mixer,
    walsh_hadamard_transform,
    x_term_diagonal,
)
from .xy import (
    CliqueMixer,
    RingMixer,
    XYMixer,
    mixer_clique,
    mixer_ring,
    xy_subspace_matrix,
)

__all__ = [
    "MIXER_NAMES",
    "make_mixer",
    "DiagonalizedMixer",
    "Mixer",
    "GroverMixer",
    "grover_mixer",
    "grover_mixer_dicke",
    "MixerSchedule",
    "FixedUnitaryMixer",
    "HermitianMixer",
    "is_hermitian",
    "is_unitary",
    "MultiAngleXMixer",
    "XMixer",
    "mixer_x",
    "transverse_field_mixer",
    "walsh_hadamard_transform",
    "x_term_diagonal",
    "CliqueMixer",
    "RingMixer",
    "XYMixer",
    "mixer_clique",
    "mixer_ring",
    "xy_subspace_matrix",
]


def __getattr__(name: str):
    # The name-based mixer registry lives in repro.api (which imports this
    # package); re-export it lazily so `from repro.mixers import make_mixer`
    # works without a circular import at module load time.
    if name in ("make_mixer", "MIXER_NAMES"):
        from ..api import mixers as _api_mixers

        return getattr(_api_mixers, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
