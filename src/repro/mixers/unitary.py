"""Arbitrary user-supplied mixers.

The paper notes that "any mixer that is not of the above formats ... can be
implemented as a unitary matrix, and JuliQAOA will compute and store the
eigendecomposition".  Two entry points cover that:

* :class:`HermitianMixer` — the mixer Hamiltonian is given as an explicit
  Hermitian matrix over the feasible space; it is eigendecomposed once and
  then behaves like any other diagonalized mixer.
* :class:`FixedUnitaryMixer` — a fixed unitary ``U`` is given; its matrix
  logarithm defines an effective Hamiltonian ``H = i log(U)`` so that
  ``beta = 1`` reproduces ``U`` exactly and other angles interpolate along the
  same one-parameter group.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..hilbert.subspace import FeasibleSpace, FullSpace
from ..io.cache import cached_eigendecomposition
from .base import DiagonalizedMixer

__all__ = ["HermitianMixer", "FixedUnitaryMixer", "is_hermitian", "is_unitary"]


def is_hermitian(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Whether ``matrix`` is Hermitian to tolerance ``atol``."""
    matrix = np.asarray(matrix)
    return matrix.ndim == 2 and matrix.shape[0] == matrix.shape[1] and np.allclose(
        matrix, matrix.conj().T, atol=atol
    )


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Whether ``matrix`` is unitary to tolerance ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return np.allclose(matrix @ matrix.conj().T, identity, atol=atol)


class HermitianMixer(DiagonalizedMixer):
    """Mixer defined by an explicit Hermitian matrix over the feasible space."""

    def __init__(
        self,
        matrix: np.ndarray,
        space: FeasibleSpace | None = None,
        *,
        file: str | Path | None = None,
        name: str = "hermitian",
    ):
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("mixer matrix must be square")
        if not is_hermitian(matrix):
            raise ValueError(
                "mixer matrix must be Hermitian; use FixedUnitaryMixer for unitary input"
            )
        dim = matrix.shape[0]
        if space is None:
            n = dim.bit_length() - 1
            if 1 << n != dim:
                raise ValueError(
                    "matrix dimension is not a power of two; pass the feasible space explicitly"
                )
            space = FullSpace(n)
        if space.dim != dim:
            raise ValueError(
                f"matrix dimension {dim} does not match feasible-space dimension {space.dim}"
            )
        self.name = name
        key = f"{name}_dim{dim}"
        eigenvalues, eigenvectors = cached_eigendecomposition(
            file, key, lambda: np.linalg.eigh(matrix)
        )
        super().__init__(space, eigenvalues, eigenvectors)

    def cache_key(self) -> str:
        return f"{self.name}_dim{self.dim}"


class FixedUnitaryMixer(DiagonalizedMixer):
    """Mixer defined by a fixed unitary ``U``; ``apply(psi, beta)`` gives ``U^beta |psi>``.

    The effective Hamiltonian is ``H = i log(U)`` computed from the unitary's
    eigendecomposition: ``U = W diag(e^{i phi}) W^†`` gives eigenvalues
    ``-phi`` for ``H`` so that ``exp(-i * 1 * H) = U``.
    """

    def __init__(
        self, unitary: np.ndarray, space: FeasibleSpace | None = None, *, name: str = "unitary"
    ):
        unitary = np.asarray(unitary, dtype=np.complex128)
        if not is_unitary(unitary):
            raise ValueError("input matrix is not unitary")
        dim = unitary.shape[0]
        if space is None:
            n = dim.bit_length() - 1
            if 1 << n != dim:
                raise ValueError(
                    "matrix dimension is not a power of two; pass the feasible space explicitly"
                )
            space = FullSpace(n)
        if space.dim != dim:
            raise ValueError(
                f"matrix dimension {dim} does not match feasible-space dimension {space.dim}"
            )
        # A unitary is normal, so Schur form is diagonal: U = W T W^† with T diagonal.
        from scipy.linalg import schur

        T, W = schur(unitary, output="complex")
        phases = np.angle(np.diag(T))
        self.name = name
        self.unitary = unitary
        super().__init__(space, -phases, W)

    def apply_batch(
        self,
        Psi: np.ndarray,
        betas: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Batched layer with a ``beta = 1`` fast path.

        When every column uses ``beta = 1`` (the defining case: apply ``U``
        itself), the layer is a single GEMM with the stored unitary — exact by
        construction and half the work of the eigenbasis round trip through
        ``i log(U)``.  Mixed angles fall back to the diagonalized batch path.
        """
        Psi, out, M = self._check_batch(Psi, out)
        betas = self._batch_angles(betas, M)
        if M > 0 and np.all(betas == 1.0):
            bk = workspace.backend if workspace is not None else self.backend
            if np.may_share_memory(out, Psi):
                if workspace is not None:
                    result = bk.matmul(self.unitary, Psi, out=workspace.scratch(M))
                else:
                    result = bk.matmul(self.unitary, Psi)
                out[:] = result
            else:
                bk.matmul(self.unitary, Psi, out=out)
            return out
        return super().apply_batch(Psi, betas, out=out, workspace=workspace)

    def cache_key(self) -> str:
        return f"{self.name}_dim{self.dim}"
