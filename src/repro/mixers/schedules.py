"""Per-layer mixer schedules.

The paper's ``simulate()`` accepts either a single mixer, an array of ``p``
mixers (a different mixer in each round), or — for multi-angle QAOA — nested
arrays of mixers with nested angle arrays.  :class:`MixerSchedule` normalizes
those input shapes into one object the simulator can iterate over, and keeps
track of how many angles each layer consumes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import Mixer
from .xmixer import MultiAngleXMixer

__all__ = ["MixerSchedule"]


class MixerSchedule:
    """An ordered list of per-round mixers with per-round angle counts.

    Parameters
    ----------
    mixers:
        Either a single :class:`~repro.mixers.base.Mixer` (reused every round)
        or a sequence of mixers, one per round.
    rounds:
        Number of QAOA rounds ``p``.  Required when a single mixer is given;
        otherwise inferred from the sequence length.
    """

    def __init__(self, mixers: Mixer | Sequence[Mixer], rounds: int | None = None):
        if isinstance(mixers, Mixer):
            if rounds is None:
                raise ValueError("rounds must be given when a single mixer is supplied")
            if rounds < 1:
                raise ValueError("a QAOA needs at least one round")
            layer_list = [mixers] * rounds
        else:
            layer_list = list(mixers)
            if not layer_list:
                raise ValueError("the mixer schedule must contain at least one mixer")
            if rounds is not None and rounds != len(layer_list):
                raise ValueError(
                    f"rounds={rounds} does not match the {len(layer_list)} mixers supplied"
                )
            for m in layer_list:
                if not isinstance(m, Mixer):
                    raise TypeError(f"expected Mixer instances, got {type(m).__name__}")
        dims = {m.dim for m in layer_list}
        if len(dims) != 1:
            raise ValueError("all mixers in a schedule must act on the same space")
        self.layers: tuple[Mixer, ...] = tuple(layer_list)

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of rounds."""
        return len(self.layers)

    @property
    def dim(self) -> int:
        """Dimension of the space all mixers act on."""
        return self.layers[0].dim

    @property
    def space(self):
        """The feasible space of the first mixer (shared by all layers)."""
        return self.layers[0].space

    def beta_counts(self) -> list[int]:
        """Number of beta angles consumed by each round (1, or the number of
        terms for a multi-angle layer)."""
        counts = []
        for mixer in self.layers:
            if isinstance(mixer, MultiAngleXMixer):
                counts.append(mixer.num_angles)
            else:
                counts.append(1)
        return counts

    @property
    def total_betas(self) -> int:
        """Total number of beta angles across all rounds."""
        return sum(self.beta_counts())

    def split_betas(self, betas: np.ndarray) -> list[np.ndarray]:
        """Split a flat beta vector into per-round angle chunks."""
        betas = np.asarray(betas, dtype=np.float64).ravel()
        if betas.size != self.total_betas:
            raise ValueError(f"expected {self.total_betas} beta angles, got {betas.size}")
        chunks = []
        cursor = 0
        for count in self.beta_counts():
            chunks.append(betas[cursor : cursor + count])
            cursor += count
        return chunks

    def initial_state(self, dtype=np.complex128) -> np.ndarray:
        """Initial state proposed by the first mixer in the schedule."""
        return self.layers[0].initial_state(dtype=dtype)

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return self.p

    def __getitem__(self, index: int) -> Mixer:
        return self.layers[index]
