"""Name-based angle-strategy registry behind one ``AngleStrategy`` protocol.

Every angle-finding entry point in :mod:`repro.angles` — grid search, random
restarts, basinhopping, the iterative/Fourier extrapolation scheme, the
median-angles heuristic and the vectorized multi-start refiner — historically
had its own signature and its own result shape (``AngleResult``, plain
tuples, ``MultiStartResult``).  This module adapts all of them behind a
single protocol::

    strategy(ansatz, rng=rng, **params) -> AngleResult

where the returned :class:`~repro.angles.result.AngleResult` always carries
the canonical registry ``strategy`` name, a positive ``evaluations`` count
and the ansatz's ``p``.  ``rng`` is the only source of randomness, so a
(strategy, params, seed) triple reproduces its angles bit-for-bit.

Each registered adapter exposes the underlying function(s) it wraps via an
``implements`` attribute, which the registry-completeness test uses to prove
no exported strategy is missing from the registry.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..angles.basinhopping import basinhop
from ..angles.grid import grid_search
from ..angles.iterative import find_angles
from ..angles.median import evaluate_median_angles, median_angles
from ..angles.multistart import multistart_minimize
from ..angles.random_restart import find_angles_random
from ..angles.result import AngleResult
from ..core.ansatz import QAOAAnsatz
from ..portfolio.racing import race_portfolio
from .registry import Registry, is_binding_error

__all__ = ["AngleStrategy", "STRATEGIES", "STRATEGY_NAMES", "find_strategy", "run_strategy"]


@runtime_checkable
class AngleStrategy(Protocol):
    """The uniform calling convention every registered strategy satisfies."""

    def __call__(
        self, ansatz: QAOAAnsatz, *, rng: np.random.Generator | int | None = None, **params
    ) -> AngleResult: ...


STRATEGIES: Registry[AngleStrategy] = Registry("angle strategy")


def _register(name: str, *aliases: str, implements=()):
    """Register an adapter and record which :mod:`repro.angles` callables it wraps."""

    def decorator(fn):
        fn.strategy_name = name
        fn.implements = tuple(implements)
        STRATEGIES.add(name, fn, *aliases)
        return fn

    return decorator


def _normalized(result: AngleResult, name: str, ansatz: QAOAAnsatz) -> AngleResult:
    """Re-label a result with its canonical registry name (history preserved)."""
    return AngleResult(
        angles=result.angles,
        value=result.value,
        p=ansatz.p,
        evaluations=result.evaluations,
        strategy=name,
        history=result.history,
        timed_out=result.timed_out,
    )


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


# ---------------------------------------------------------------------------
# Adapters
# ---------------------------------------------------------------------------


@_register("grid", "grid_search", implements=(grid_search,))
def _grid(ansatz, *, rng=None, **params):
    """Exhaustive chunked-batch grid search (deterministic; ``rng`` unused)."""
    for key in ("beta_range", "gamma_range"):
        if key in params:
            params[key] = tuple(params[key])
    return _normalized(grid_search(ansatz, **params), "grid", ansatz)


@_register("random", "random_restart", implements=(find_angles_random,))
def _random(ansatz, *, rng=None, **params):
    """Best of ``iters`` random-start BFGS searches (Lotshaw-style baseline)."""
    result = find_angles_random(ansatz, rng=_as_rng(rng), **params)
    return _normalized(result, "random", ansatz)


@_register("basinhop", "basinhopping", implements=(basinhop,))
def _basinhop(ansatz, *, rng=None, x0=None, **params):
    """Basinhopping from a random (or supplied ``x0``) starting point."""
    rng = _as_rng(rng)
    if x0 is None:
        x0 = ansatz.random_angles(rng)
    result = basinhop(ansatz, np.asarray(x0, dtype=np.float64), rng=rng, **params)
    return _normalized(result, "basinhop", ansatz)


def _iterative_impl(ansatz, rng, extrapolation: str, name: str, params) -> AngleResult:
    """Shared body of the iterative/Fourier schemes: per-round build-up to ``p``."""
    mixers = set(id(m) for m in ansatz.schedule.layers)
    if len(mixers) != 1:
        raise ValueError(
            f"the {name!r} strategy builds rounds 1..p iteratively and requires "
            "a schedule with a single repeated mixer"
        )
    per_round = find_angles(
        ansatz.p,
        ansatz.schedule.layers[0],
        ansatz.cost,
        initial_state=ansatz.initial_state,
        maximize=ansatz.maximize,
        extrapolation=extrapolation,
        rng=_as_rng(rng),
        **params,
    )
    final = per_round[ansatz.p]
    return AngleResult(
        angles=final.angles,
        value=final.value,
        p=ansatz.p,
        evaluations=sum(r.evaluations for r in per_round.values()),
        strategy=name,
        history=[
            {"round": p, "value": r.value, "evaluations": r.evaluations}
            for p, r in sorted(per_round.items())
        ],
        timed_out=final.timed_out,
    )


@_register("iterative", "interp", implements=(find_angles,))
def _iterative(ansatz, *, rng=None, **params):
    """The paper's default scheme: extrapolate round ``p-1`` angles, basinhop."""
    extrapolation = params.pop("extrapolation", "interp")
    return _iterative_impl(ansatz, rng, extrapolation, "iterative", params)


@_register("fourier", implements=(find_angles,))
def _fourier(ansatz, *, rng=None, **params):
    """Iterative scheme with FOURIER (sine-coefficient) extrapolation."""
    params.pop("extrapolation", None)
    return _iterative_impl(ansatz, rng, "fourier", "fourier", params)


@_register("median", "median_angles", implements=(median_angles, evaluate_median_angles))
def _median(ansatz, *, rng=None, iters: int = 20, polish: bool = False, **params):
    """Median of the refined restart angles, re-evaluated (optionally polished).

    The paper's median strategy takes medians across an instance *ensemble*
    (see :func:`repro.angles.median.median_angle_study`, which stays the
    multi-instance entry point); this single-instance adaptation exploits the
    same angle concentration across the restarts of one instance.
    """
    on_incumbent = params.get("on_incumbent")
    summary, all_results = find_angles_random(
        ansatz, iters=iters, rng=_as_rng(rng), return_all=True, **params
    )
    medians = median_angles(all_results)
    evaluated = evaluate_median_angles(ansatz, medians, polish=polish)
    better_median = (
        (evaluated.value > summary.value) if ansatz.maximize else (evaluated.value < summary.value)
    )
    if on_incumbent is not None and better_median:
        on_incumbent(evaluated.value, np.array(evaluated.angles, dtype=np.float64))
    return AngleResult(
        angles=evaluated.angles,
        value=evaluated.value,
        p=ansatz.p,
        evaluations=summary.evaluations + evaluated.evaluations,
        strategy="median",
        history=[{"restarts": iters, "restart_best": summary.value, "polished": bool(polish)}],
        timed_out=summary.timed_out,
    )


@_register("multistart", "multistart_minimize", implements=(multistart_minimize,))
def _multistart(ansatz, *, rng=None, iters: int = 32, budget=None, on_incumbent=None, **params):
    """Lock-step vectorized BFGS refinement of ``iters`` random seeds."""
    rng = _as_rng(rng)
    seeds = 2.0 * np.pi * rng.random((int(iters), ansatz.num_angles))
    report = multistart_minimize(
        ansatz, seeds, budget=budget, checkpoint=on_incumbent, **params
    )
    best = int(np.argmax(report.values)) if ansatz.maximize else int(np.argmin(report.values))
    return AngleResult(
        angles=report.angles[best],
        value=float(report.values[best]),
        p=ansatz.p,
        evaluations=report.evaluations,
        strategy="multistart",
        history=[
            {
                "seeds": int(seeds.shape[0]),
                "converged": int(report.converged.sum()),
                "best_seed": best,
            }
        ],
        timed_out=report.timed_out,
    )


@_register("portfolio", "race", implements=(race_portfolio,))
def _portfolio(ansatz, *, rng=None, **params):
    """Race several strategies against a deadline, sharing one incumbent.

    Accepts ``racers`` (list of ``{"name", "params"}`` specs), ``deadline_s``
    and the other :func:`~repro.portfolio.racing.race_portfolio` knobs; the
    result's history carries the per-racer reports and the board trail.
    """
    on_incumbent = params.pop("on_incumbent", None)
    outcome = race_portfolio(ansatz, rng=rng, **params)
    if on_incumbent is not None:
        on_incumbent(outcome.result.value, np.array(outcome.result.angles, dtype=np.float64))
    result = _normalized(outcome.result, "portfolio", ansatz)
    result.history.append({"trail": outcome.trail})
    return result


#: Canonical strategy names, in registration order.
STRATEGY_NAMES = STRATEGIES.names()


def find_strategy(name: str) -> AngleStrategy:
    """Look up a registered strategy (case-insensitive, alias-aware)."""
    return STRATEGIES.get(name)


def run_strategy(
    name: str,
    ansatz: QAOAAnsatz,
    *,
    rng: np.random.Generator | int | None = None,
    **params,
) -> AngleResult:
    """Run a registered strategy by name and return its normalized result."""
    strategy = STRATEGIES.get(name)
    try:
        return strategy(ansatz, rng=rng, **params)
    except TypeError as exc:
        if not is_binding_error(exc):
            raise  # a genuine TypeError from inside the strategy, not bad params
        raise ValueError(
            f"bad parameters for strategy {STRATEGIES.canonical(name)!r}: {exc}"
        ) from exc
