"""Name-based mixer registry.

Maps the mixer family names usable in a :class:`~repro.api.spec.MixerSpec`
to factory functions.  Every factory takes the *feasible space* of the
problem being solved (mixers must act on the same space the objective values
were pre-computed over) plus family-specific keyword parameters, and returns
a ready :class:`~repro.mixers.base.Mixer`.

Unconstrained families (``"x"``, ``"multiangle_x"``) require the full
hypercube; the XY families (``"ring"``, ``"clique"``, ``"xy"``) require a
Hamming-weight (Dicke) subspace; ``"grover"`` works on any space.
"""

from __future__ import annotations

from typing import Callable

from ..hilbert.subspace import FeasibleSpace
from ..mixers.base import Mixer
from ..mixers.grover import GroverMixer
from ..mixers.xmixer import MultiAngleXMixer, mixer_x
from ..mixers.xy import CliqueMixer, RingMixer, XYMixer
from .registry import Registry, is_binding_error

__all__ = ["MIXERS", "MIXER_NAMES", "make_mixer"]

MixerFactory = Callable[..., Mixer]

MIXERS: Registry[MixerFactory] = Registry("mixer")


def _require_full(space: FeasibleSpace, name: str) -> int:
    if not space.is_full:
        raise ValueError(
            f"mixer {name!r} acts on the full 2^n space, but the problem is "
            f"constrained to {space.name!r}; use one of the constrained mixers "
            "('ring', 'clique', 'xy', 'grover') instead"
        )
    return space.n


def _require_dicke(space: FeasibleSpace, name: str) -> tuple[int, int]:
    if space.hamming_weight is None:
        raise ValueError(
            f"mixer {name!r} conserves Hamming weight and needs a Dicke-subspace "
            f"problem (space {space.name!r} has no fixed Hamming weight); use an "
            "unconstrained mixer ('x', 'multiangle_x', 'grover') instead"
        )
    return space.n, int(space.hamming_weight)


@MIXERS.register("x", "transverse_field")
def _make_x(space: FeasibleSpace, *, orders=(1,), coefficients=None) -> Mixer:
    """Products-of-X mixer; ``orders=[1]`` is the transverse field ``sum_i X_i``."""
    n = _require_full(space, "x")
    return mixer_x(list(orders), n, coefficients)


@MIXERS.register("multiangle_x", "multiangle")
def _make_multiangle_x(space: FeasibleSpace, *, terms=None) -> Mixer:
    """Multi-angle X mixer; default terms are the single-qubit ``X_i``."""
    n = _require_full(space, "multiangle_x")
    if terms is None:
        terms = [(i,) for i in range(n)]
    return MultiAngleXMixer(n, [tuple(term) for term in terms])


@MIXERS.register("ring")
def _make_ring(space: FeasibleSpace, *, file=None) -> Mixer:
    """Nearest-neighbour XY Ring mixer on the problem's Dicke subspace."""
    n, k = _require_dicke(space, "ring")
    return RingMixer(n, k, file=file)


@MIXERS.register("clique")
def _make_clique(space: FeasibleSpace, *, file=None) -> Mixer:
    """All-pairs XY Clique mixer on the problem's Dicke subspace."""
    n, k = _require_dicke(space, "clique")
    return CliqueMixer(n, k, file=file)


@MIXERS.register("xy")
def _make_xy(space: FeasibleSpace, *, pairs, file=None) -> Mixer:
    """General XY mixer over an explicit interaction-pair list."""
    n, k = _require_dicke(space, "xy")
    return XYMixer(n, k, [tuple(pair) for pair in pairs], name="xy", file=file)


@MIXERS.register("grover")
def _make_grover(space: FeasibleSpace) -> Mixer:
    """Rank-one Grover mixer over the feasible space's uniform superposition."""
    return GroverMixer(space)


#: Canonical mixer family names, in registration order.
MIXER_NAMES = MIXERS.names()


def make_mixer(name: str, space: FeasibleSpace, **params) -> Mixer:
    """Build a registered mixer family over ``space``.

    Raises a ``ValueError`` listing the known families for an unknown
    ``name`` (lookup is case-insensitive), and a ``ValueError`` explaining
    the mismatch when the family cannot act on ``space``.
    """
    factory = MIXERS.get(name)
    try:
        return factory(space, **params)
    except TypeError as exc:
        if not is_binding_error(exc):
            raise  # a genuine TypeError from inside the factory, not bad params
        raise ValueError(
            f"bad parameters for mixer {MIXERS.canonical(name)!r}: {exc}"
        ) from exc
