"""Declarative solve specifications with lossless JSON round-trips.

A :class:`SolveSpec` is the single serializable description of one QAOA solve:
*what* problem instance (:class:`ProblemSpec`), *which* mixer family
(:class:`MixerSpec`), *how* to find angles (:class:`StrategySpec`), plus the
round count and the RNG seed the strategy consumes.  Specs are plain data —
every field is JSON-serializable — so a spec can be stored in a run-store
manifest, shipped to a worker process, or diffed between runs, and
``from_json(to_json(spec))`` reproduces the exact same solve seed-for-seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["ProblemSpec", "MixerSpec", "StrategySpec", "SolveSpec"]


def _freeze_params(params: Mapping[str, Any] | None) -> dict:
    """Copy ``params`` into a plain dict, rejecting non-JSON-serializable values."""
    out = dict(params or {})
    try:
        json.dumps(out)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"spec params must be JSON-serializable: {exc}") from exc
    return out


@dataclass(frozen=True)
class ProblemSpec:
    """A named problem family plus everything needed to regenerate the instance.

    ``name``/``n``/``seed`` feed :func:`repro.problems.make_problem`;
    ``params`` holds the family's extra keyword arguments (``k``,
    ``edge_probability``, ``clause_density``, ``penalty``, ...).
    """

    name: str
    n: int
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", str(self.name))
        object.__setattr__(self, "n", int(self.n))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "params", _freeze_params(self.params))
        if self.n < 1:
            raise ValueError("a problem needs at least one qubit")

    def to_dict(self) -> dict:
        return {"name": self.name, "n": self.n, "seed": self.seed, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProblemSpec":
        return cls(
            name=data["name"],
            n=data["n"],
            seed=data.get("seed", 0),
            params=data.get("params", {}),
        )


@dataclass(frozen=True)
class MixerSpec:
    """A named mixer family (resolved against the problem's feasible space).

    ``params`` holds family-specific options (``orders`` for ``"x"``,
    ``terms`` for ``"multiangle_x"``, ``pairs`` for ``"xy"``, ...).
    """

    name: str = "x"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", str(self.name))
        object.__setattr__(self, "params", _freeze_params(self.params))

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MixerSpec":
        return cls(name=data["name"], params=data.get("params", {}))


@dataclass(frozen=True)
class StrategySpec:
    """A named angle-finding strategy plus its effort knobs.

    ``params`` are forwarded to the registered strategy adapter (``iters``,
    ``resolution``, ``n_hops``, ``maxiter``, ...).
    """

    name: str = "random"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", str(self.name))
        object.__setattr__(self, "params", _freeze_params(self.params))

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StrategySpec":
        return cls(name=data["name"], params=data.get("params", {}))


def _coerce(value, spec_cls):
    """Accept a spec instance, a ``{"name": ...}`` dict, or a bare name string."""
    if isinstance(value, spec_cls):
        return value
    if isinstance(value, Mapping):
        return spec_cls.from_dict(value)
    if isinstance(value, str):
        return spec_cls(name=value)
    raise TypeError(
        f"expected {spec_cls.__name__}, mapping or name string, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class SolveSpec:
    """One complete, serializable QAOA solve: problem x mixer x strategy.

    Attributes
    ----------
    problem:
        The :class:`ProblemSpec` (or a mapping coerced into one).
    mixer, strategy:
        :class:`MixerSpec` / :class:`StrategySpec`; bare name strings and
        mappings are coerced, so ``SolveSpec(problem=..., mixer="grover",
        strategy="basinhop")`` works.
    p:
        Number of QAOA rounds.
    seed:
        Seed of the RNG handed to the angle strategy (the *only* source of
        randomness in a solve, which is what makes specs reproducible).
    """

    problem: ProblemSpec
    mixer: MixerSpec = field(default_factory=MixerSpec)
    strategy: StrategySpec = field(default_factory=StrategySpec)
    p: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "problem", _coerce(self.problem, ProblemSpec))
        object.__setattr__(self, "mixer", _coerce(self.mixer, MixerSpec))
        object.__setattr__(self, "strategy", _coerce(self.strategy, StrategySpec))
        object.__setattr__(self, "p", int(self.p))
        object.__setattr__(self, "seed", int(self.seed))
        if self.p < 1:
            raise ValueError("a QAOA needs at least one round")

    # -- construction helpers ------------------------------------------
    @classmethod
    def build(
        cls,
        problem: str,
        n: int,
        *,
        problem_seed: int = 0,
        problem_params: Mapping[str, Any] | None = None,
        mixer: str = "x",
        mixer_params: Mapping[str, Any] | None = None,
        strategy: str = "random",
        strategy_params: Mapping[str, Any] | None = None,
        p: int = 1,
        seed: int = 0,
    ) -> "SolveSpec":
        """Flat-keyword constructor (what ``solve(problem=..., n=...)`` uses)."""
        return cls(
            problem=ProblemSpec(problem, n, seed=problem_seed, params=problem_params or {}),
            mixer=MixerSpec(mixer, params=mixer_params or {}),
            strategy=StrategySpec(strategy, params=strategy_params or {}),
            p=p,
            seed=seed,
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "problem": self.problem.to_dict(),
            "mixer": self.mixer.to_dict(),
            "strategy": self.strategy.to_dict(),
            "p": self.p,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolveSpec":
        # __post_init__ coerces, so sub-specs may be mappings or bare name
        # strings here — exactly what hand-written JSON documents send.
        return cls(
            problem=data["problem"],
            mixer=data.get("mixer", MixerSpec()),
            strategy=data.get("strategy", StrategySpec()),
            p=data.get("p", 1),
            seed=data.get("seed", 0),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        """Lossless JSON form: ``SolveSpec.from_json(spec.to_json()) == spec``."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SolveSpec":
        return cls.from_dict(json.loads(text))
