"""Generic name-based registries.

The declarative :func:`repro.api.solve` facade resolves every component of a
:class:`~repro.api.spec.SolveSpec` — mixer family, angle strategy — through a
:class:`Registry`: a small, ordered mapping from canonical names (plus
aliases) to factory callables.  Lookups are case-insensitive and unknown
names fail with the sorted list of canonical choices, so a typo in a spec or
on the command line is a one-line diagnosis instead of a KeyError deep in a
sweep.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

__all__ = ["Registry", "RegistryError", "is_binding_error"]

T = TypeVar("T")

#: Message fragments CPython uses for call-binding TypeErrors.  Used to tell
#: "you passed a bad parameter name" apart from a genuine TypeError raised
#: inside a factory/strategy body, which must propagate with its traceback.
_BINDING_ERROR_MARKERS = (
    "unexpected keyword argument",
    "required keyword-only argument",
    "required positional argument",
    "multiple values for argument",
    "positional arguments but",
)


def is_binding_error(exc: TypeError) -> bool:
    """Whether ``exc`` looks like a bad-call-signature TypeError."""
    message = str(exc)
    return any(marker in message for marker in _BINDING_ERROR_MARKERS)


class RegistryError(ValueError):
    """Unknown or duplicate name in a :class:`Registry` (a ``ValueError``)."""


class Registry(Generic[T]):
    """An ordered, case-insensitive mapping from names to registered objects.

    Parameters
    ----------
    kind:
        Human-readable description of what is registered (``"mixer"``,
        ``"angle strategy"``); used in error messages.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, T] = {}  # canonical name -> object
        self._aliases: dict[str, str] = {}  # lowercase name/alias -> canonical

    # ------------------------------------------------------------------
    def register(self, name: str, *aliases: str) -> Callable[[T], T]:
        """Decorator registering an object under ``name`` (plus ``aliases``)."""

        def decorator(obj: T) -> T:
            self.add(name, obj, *aliases)
            return obj

        return decorator

    def add(self, name: str, obj: T, *aliases: str) -> None:
        """Register ``obj`` under ``name`` and any number of aliases."""
        for key in (name, *aliases):
            lowered = key.lower()
            if lowered in self._aliases:
                raise RegistryError(
                    f"{self.kind} name {key!r} is already registered "
                    f"(for {self._aliases[lowered]!r})"
                )
        self._entries[name] = obj
        for key in (name, *aliases):
            self._aliases[key.lower()] = name

    # ------------------------------------------------------------------
    def canonical(self, name: str) -> str:
        """Resolve ``name`` (case-insensitive, alias-aware) to its canonical form."""
        try:
            return self._aliases[str(name).lower()]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; choose from {sorted(self._entries)}"
            ) from None

    def get(self, name: str) -> T:
        """Look up a registered object by name or alias (case-insensitive)."""
        return self._entries[self.canonical(name)]

    def names(self) -> tuple[str, ...]:
        """Canonical names in registration order."""
        return tuple(self._entries)

    def items(self) -> tuple[tuple[str, T], ...]:
        """``(canonical name, object)`` pairs in registration order."""
        return tuple(self._entries.items())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind!r}, names={list(self._entries)})"
