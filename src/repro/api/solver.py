"""The unified solver facade: ``solve(spec)`` / :class:`QAOASolver`.

One call runs the paper's whole toolchain — regenerate the problem instance,
pre-compute its objective values, build the mixer over the feasible space,
hand the ansatz to a registered angle strategy, and simulate the best angles
— returning a rich :class:`SolveResult`.  The fast paths land automatically:
strategies ride the batched evaluation engine (PR 1) and the batched
adjoint-gradient / vectorized multi-start engine (PR 3) through the shared
:class:`~repro.core.ansatz.QAOAAnsatz` workspaces.

The existing free functions (``simulate``, ``grid_search``,
``find_angles_random``, ...) remain the low-level layer; ``solve`` is a thin,
declarative composition of them, which is what makes spec-for-spec
equivalence with the legacy calls testable.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..angles.result import AngleResult
from ..core.ansatz import QAOAAnsatz
from ..core.simulator import QAOAResult
from ..mixers.base import Mixer
from ..portfolio.budget import Budget
from ..problems.registry import ProblemInstance, make_problem
from .mixers import MIXERS, make_mixer
from .routing import ExecutionPlan, memoized_structure, select_execution_path, spectrum_for
from .spec import ProblemSpec, SolveSpec
from .strategies import run_strategy

__all__ = [
    "SolveResult",
    "QAOASolver",
    "solve",
    "memoized_problem",
    "clear_problem_memo",
]

#: How many distinct problem instances the module-level memo keeps warm.
_PROBLEM_MEMO_CAPACITY = 16

_problem_memo: OrderedDict[str, ProblemInstance] = OrderedDict()
_problem_memo_lock = threading.Lock()


def memoized_problem(problem: ProblemSpec) -> ProblemInstance:
    """The regenerated :class:`ProblemInstance` for ``problem``, memoized.

    Problem regeneration (graph/instance sampling plus objective values over
    the feasible space) is deterministic in the spec, so repeated solver
    constructions for the same problem — a sweep's params-only grid, repeated
    ``run(seed=...)`` calls, the solver service — share one instance instead
    of rebuilding it per call.  A small LRU bounds residency; thread-safe.
    """
    key = json.dumps(problem.to_dict(), sort_keys=True)
    with _problem_memo_lock:
        cached = _problem_memo.get(key)
        if cached is not None:
            _problem_memo.move_to_end(key)
            return cached
    instance = make_problem(problem.name, problem.n, seed=problem.seed, **problem.params)
    with _problem_memo_lock:
        _problem_memo[key] = instance
        _problem_memo.move_to_end(key)
        while len(_problem_memo) > _PROBLEM_MEMO_CAPACITY:
            _problem_memo.popitem(last=False)
    return instance


def clear_problem_memo() -> None:
    """Drop all memoized problem instances (tests and memory-pressure hooks)."""
    with _problem_memo_lock:
        _problem_memo.clear()


@dataclass
class SolveResult:
    """Everything one spec-driven solve produced.

    Attributes
    ----------
    spec:
        The exact :class:`~repro.api.spec.SolveSpec` that was run.
    angles:
        Best flat angle vector found (betas then gammas).
    value:
        Expectation value ``<C>`` at those angles.
    optimum:
        Brute-force optimum over the feasible space.
    approximation_ratio:
        ``value / optimum``, or ``None`` when the optimum is not positive
        (where the ratio is meaningless).
    ground_state_probability:
        Total probability of sampling an optimal state at the best angles.
    evaluations:
        Expectation/gradient evaluations the strategy spent.
    strategy:
        Canonical name of the strategy that produced the angles.
    wall_time_s:
        Wall-clock seconds for the angle search plus the final simulation.
    angle_result:
        The strategy's full normalized :class:`AngleResult` (history included),
        or ``None`` on a result reconstructed from a cached row.
    simulation:
        The :class:`~repro.core.simulator.QAOAResult` at the best angles
        (sampling probabilities, amplitudes, ...), or ``None`` on a result
        reconstructed from a cached row.
    cached:
        ``True`` when this result was answered from the spec-keyed result
        cache without running the simulator.
    execution:
        Which engine produced the result: ``"dense"``, ``"sharded"`` or
        ``"compressed"`` (see :mod:`repro.api.routing`).
    timed_out:
        ``True`` when the angle search was stopped early by a deadline or
        cancellation — ``angles``/``value`` are then the best found in time.
    """

    spec: SolveSpec
    angles: np.ndarray
    value: float
    optimum: float
    approximation_ratio: float | None
    ground_state_probability: float
    evaluations: int
    strategy: str
    wall_time_s: float
    angle_result: AngleResult | None = field(repr=False, default=None)
    simulation: QAOAResult | None = field(repr=False, default=None)
    cached: bool = False
    execution: str = "dense"
    timed_out: bool = False

    def probabilities(self) -> np.ndarray:
        """Sampling probabilities over the feasible space at the best angles."""
        if self.simulation is None:
            raise ValueError(
                "no simulation attached (cache-reconstructed result); "
                "re-run solve() with the result cache disabled for the full state"
            )
        return self.simulation.probabilities()

    def sample(self, shots: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw measurement outcomes from the final state."""
        if self.simulation is None:
            raise ValueError(
                "no simulation attached (cache-reconstructed result); "
                "re-run solve() with the result cache disabled for the full state"
            )
        return self.simulation.sample(shots, rng=rng)

    @classmethod
    def from_row(
        cls,
        spec: SolveSpec,
        row: Mapping[str, Any],
        *,
        cached: bool = True,
        wall_time_s: float | None = None,
    ):
        """Rebuild the scalar portion of a result from its stored row.

        The inverse of :meth:`to_row` up to the fields a flat row cannot carry
        (``angle_result`` history and the final statevector stay ``None``) —
        this is how a result-cache hit materializes without any simulation.
        ``wall_time_s`` overrides the stored timing — a cache hit passes the
        (tiny) time it took to *answer*, so every result row carries the wall
        time this response actually cost, never a stale copy.
        """
        ratio = row.get("approximation_ratio")
        return cls(
            spec=spec,
            angles=np.asarray(row["angles"], dtype=np.float64),
            value=float(row["value"]),
            optimum=float(row["optimum"]),
            approximation_ratio=None if ratio is None else float(ratio),
            ground_state_probability=float(row["ground_state_probability"]),
            evaluations=int(row.get("evaluations", 0)),
            strategy=str(row["strategy"]),
            wall_time_s=float(
                row.get("wall_time_s", 0.0) if wall_time_s is None else wall_time_s
            ),
            cached=cached,
            execution=str(row.get("execution", "dense")),
            timed_out=bool(row.get("timed_out", False)),
        )

    def to_row(self) -> dict:
        """Flat JSON-serializable summary row (what sweeps store per solve).

        Component names are canonicalized (case variants of one family must
        group together downstream) and params are carried along, so rows from
        specs differing only in params stay distinguishable in a run store.
        """
        mixer_name = self.spec.mixer.name
        if mixer_name in MIXERS:
            mixer_name = MIXERS.canonical(mixer_name)
        return {
            "problem": self.spec.problem.name.lower(),
            "n": self.spec.problem.n,
            "problem_seed": self.spec.problem.seed,
            "problem_params": dict(self.spec.problem.params),
            "mixer": mixer_name,
            "mixer_params": dict(self.spec.mixer.params),
            "strategy": self.strategy,
            "strategy_params": dict(self.spec.strategy.params),
            "p": self.spec.p,
            "seed": self.spec.seed,
            "value": float(self.value),
            "optimum": float(self.optimum),
            "approximation_ratio": (
                None if self.approximation_ratio is None else float(self.approximation_ratio)
            ),
            "ground_state_probability": float(self.ground_state_probability),
            "evaluations": int(self.evaluations),
            "angles": [float(a) for a in self.angles],
            "wall_time_s": float(self.wall_time_s),
            "execution": self.execution,
            "timed_out": bool(self.timed_out),
        }


class QAOASolver:
    """A :class:`SolveSpec` resolved into live objects, ready to run.

    Construction regenerates the problem instance, pre-computes its objective
    values and builds the mixer; :meth:`run` executes the angle strategy and
    final simulation.  Keep the solver around to re-run the same spec with
    different seeds (the expensive pre-computation is reused)::

        solver = QAOASolver(spec)
        results = [solver.run(seed=s) for s in range(10)]

    ``backend`` optionally pins the array backend the ansatz kernels run on
    (defaults to the process-wide active backend, i.e. ``REPRO_BACKEND``).

    ``plan`` optionally pins the execution path (an
    :class:`~repro.api.routing.ExecutionPlan`); by default
    :func:`~repro.api.routing.select_execution_path` routes the spec to the
    dense, sharded or compressed engine.  Non-dense solvers never materialize
    the feasible space — ``problem``/``mixer`` stay ``None`` and the engine
    itself carries the optimum.  Sharded solvers own worker processes; call
    :meth:`close` (or use ``solve()``, which does) when finished.
    """

    def __init__(
        self,
        spec: SolveSpec | Mapping[str, Any],
        *,
        backend=None,
        plan: ExecutionPlan | None = None,
    ):
        if not isinstance(spec, SolveSpec):
            spec = SolveSpec.from_dict(spec)
        self.spec = spec
        if plan is None:
            plan = select_execution_path(spec)
        self.plan = plan
        self.problem: ProblemInstance | None = None
        self.mixer: Mixer | None = None
        if plan.path == "compressed":
            from ..grover.ansatz import CompressedGroverAnsatz

            structure = memoized_structure(spec.problem)
            spectrum = spectrum_for(spec.problem)
            if spectrum is None:  # pragma: no cover - the router checked this
                raise RuntimeError("compressed plan without an obtainable spectrum")
            self.ansatz = CompressedGroverAnsatz(
                spectrum,
                spec.p,
                n=structure.n,
                maximize=structure.maximize,
                backend=backend,
            )
        elif plan.path == "sharded":
            from ..hpc.sharded import ShardedAnsatz

            structure = memoized_structure(spec.problem)
            self.ansatz = ShardedAnsatz(
                structure,
                spec.mixer.name,
                spec.p,
                plan.shards,
                mixer_params=dict(spec.mixer.params),
                backend=backend,
            )
        else:
            self.problem = memoized_problem(spec.problem)
            self.mixer = make_mixer(
                spec.mixer.name, self.problem.space, **spec.mixer.params
            )
            self.ansatz = QAOAAnsatz.from_problem(
                self.problem, self.mixer, spec.p, backend=backend
            )

    @classmethod
    def from_components(
        cls,
        spec: SolveSpec,
        problem: ProblemInstance | None,
        mixer: Mixer | None,
        ansatz,
        *,
        plan: ExecutionPlan | None = None,
    ) -> "QAOASolver":
        """Wrap already-built components (the warm pool's entry) as a solver.

        Skips all construction work — this is how the solver service runs a
        spec on a pooled problem/mixer/ansatz without re-deriving anything.
        ``problem``/``mixer`` are ``None`` for pooled non-dense engines.
        """
        solver = cls.__new__(cls)
        solver.spec = spec
        solver.problem = problem
        solver.mixer = mixer
        solver.ansatz = ansatz
        if plan is None:
            plan = ExecutionPlan("dense", "pre-built components", ansatz.schedule.dim)
        solver.plan = plan
        return solver

    def close(self) -> None:
        """Release engine resources (shard workers); dense/compressed: no-op."""
        closer = getattr(self.ansatz, "close", None)
        if closer is not None:
            closer()

    def find_angles(
        self,
        *,
        seed: int | None = None,
        budget=None,
        on_incumbent=None,
    ) -> AngleResult:
        """Run just the angle strategy (``seed`` overrides the spec's).

        ``budget`` (a :class:`~repro.portfolio.budget.Budget`) and
        ``on_incumbent`` thread the anytime plumbing into the strategy; they
        are only forwarded when set, so spec params stay the strategy's own.
        """
        rng_seed = self.spec.seed if seed is None else seed
        extra = {}
        if budget is not None:
            extra["budget"] = budget
        if on_incumbent is not None:
            extra["on_incumbent"] = on_incumbent
        return run_strategy(
            self.spec.strategy.name,
            self.ansatz,
            rng=np.random.default_rng(rng_seed),
            **self.spec.strategy.params,
            **extra,
        )

    def result_from_angles(
        self,
        angle_result: AngleResult,
        *,
        seed: int | None = None,
        started: float | None = None,
    ) -> SolveResult:
        """Final simulation + metrics for an already-found angle result.

        ``started`` is a ``time.perf_counter()`` origin for ``wall_time_s``
        (0.0 when omitted); the coalescer times each request externally and
        passes its own origin here.
        """
        simulation = self.ansatz.simulate(angle_result.angles)
        wall_time = 0.0 if started is None else time.perf_counter() - started

        if self.problem is not None:
            optimum = self.problem.optimum()
        else:
            optimum = float(self.ansatz.optimum)
        ratio = float(angle_result.value) / optimum if optimum > 0 else None
        spec = self.spec
        if seed is not None and seed != spec.seed:
            spec = SolveSpec(
                problem=spec.problem,
                mixer=spec.mixer,
                strategy=spec.strategy,
                p=spec.p,
                seed=seed,
            )
        return SolveResult(
            spec=spec,
            angles=angle_result.angles,
            value=float(angle_result.value),
            optimum=optimum,
            approximation_ratio=ratio,
            ground_state_probability=simulation.ground_state_probability(),
            evaluations=int(angle_result.evaluations),
            strategy=angle_result.strategy,
            wall_time_s=wall_time,
            angle_result=angle_result,
            simulation=simulation,
            execution=self.plan.path,
            timed_out=bool(angle_result.timed_out),
        )

    def run(
        self,
        *,
        seed: int | None = None,
        timeout_s: float | None = None,
        budget=None,
        on_incumbent=None,
    ) -> SolveResult:
        """Full solve: angle search, final simulation, metrics.

        ``timeout_s`` bounds the angle search with a fresh
        :class:`~repro.portfolio.budget.Budget` (nested inside ``budget`` when
        both are given): on expiry the strategy returns its best-so-far angles
        and the result reports ``timed_out=True`` instead of raising.
        """
        started = time.perf_counter()
        if timeout_s is not None:
            budget = Budget(timeout_s, parent=budget)
        angle_result = self.find_angles(seed=seed, budget=budget, on_incumbent=on_incumbent)
        return self.result_from_angles(angle_result, seed=seed, started=started)


def solve(
    spec: SolveSpec | Mapping[str, Any] | None = None,
    *,
    timeout_s: float | None = None,
    **kwargs,
) -> SolveResult:
    """Run one declarative QAOA solve.

    Either pass a ready :class:`SolveSpec` (or its dict form)::

        result = solve(SolveSpec(problem=ProblemSpec("maxcut", 8), mixer="x",
                                 strategy="random", p=3, seed=0))

    or use the flat keyword form, which builds the spec via
    :meth:`SolveSpec.build`::

        result = solve(problem="maxcut", n=8, mixer="x", strategy="random", p=3)

    ``timeout_s`` deadline-bounds the angle search for *any* strategy; the
    result then reports ``timed_out=True`` with the best-so-far angles
    (deadlines are runtime conditions, deliberately not part of the spec —
    cache keys stay timing-free).
    """
    if spec is None:
        spec = SolveSpec.build(**kwargs)
    elif kwargs:
        raise TypeError("pass either a spec or keyword arguments, not both")
    solver = QAOASolver(spec)
    try:
        return solver.run(timeout_s=timeout_s)
    finally:
        solver.close()
