"""The unified solver facade: ``solve(spec)`` / :class:`QAOASolver`.

One call runs the paper's whole toolchain — regenerate the problem instance,
pre-compute its objective values, build the mixer over the feasible space,
hand the ansatz to a registered angle strategy, and simulate the best angles
— returning a rich :class:`SolveResult`.  The fast paths land automatically:
strategies ride the batched evaluation engine (PR 1) and the batched
adjoint-gradient / vectorized multi-start engine (PR 3) through the shared
:class:`~repro.core.ansatz.QAOAAnsatz` workspaces.

The existing free functions (``simulate``, ``grid_search``,
``find_angles_random``, ...) remain the low-level layer; ``solve`` is a thin,
declarative composition of them, which is what makes spec-for-spec
equivalence with the legacy calls testable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..angles.result import AngleResult
from ..core.ansatz import QAOAAnsatz
from ..core.simulator import QAOAResult
from ..mixers.base import Mixer
from ..problems.registry import ProblemInstance, make_problem
from .mixers import MIXERS, make_mixer
from .spec import SolveSpec
from .strategies import run_strategy

__all__ = ["SolveResult", "QAOASolver", "solve"]


@dataclass
class SolveResult:
    """Everything one spec-driven solve produced.

    Attributes
    ----------
    spec:
        The exact :class:`~repro.api.spec.SolveSpec` that was run.
    angles:
        Best flat angle vector found (betas then gammas).
    value:
        Expectation value ``<C>`` at those angles.
    optimum:
        Brute-force optimum over the feasible space.
    approximation_ratio:
        ``value / optimum``, or ``None`` when the optimum is not positive
        (where the ratio is meaningless).
    ground_state_probability:
        Total probability of sampling an optimal state at the best angles.
    evaluations:
        Expectation/gradient evaluations the strategy spent.
    strategy:
        Canonical name of the strategy that produced the angles.
    wall_time_s:
        Wall-clock seconds for the angle search plus the final simulation.
    angle_result:
        The strategy's full normalized :class:`AngleResult` (history included).
    simulation:
        The :class:`~repro.core.simulator.QAOAResult` at the best angles
        (sampling probabilities, amplitudes, ...).
    """

    spec: SolveSpec
    angles: np.ndarray
    value: float
    optimum: float
    approximation_ratio: float | None
    ground_state_probability: float
    evaluations: int
    strategy: str
    wall_time_s: float
    angle_result: AngleResult = field(repr=False)
    simulation: QAOAResult = field(repr=False)

    def probabilities(self) -> np.ndarray:
        """Sampling probabilities over the feasible space at the best angles."""
        return self.simulation.probabilities()

    def sample(self, shots: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw measurement outcomes from the final state."""
        return self.simulation.sample(shots, rng=rng)

    def to_row(self) -> dict:
        """Flat JSON-serializable summary row (what sweeps store per solve).

        Component names are canonicalized (case variants of one family must
        group together downstream) and params are carried along, so rows from
        specs differing only in params stay distinguishable in a run store.
        """
        mixer_name = self.spec.mixer.name
        if mixer_name in MIXERS:
            mixer_name = MIXERS.canonical(mixer_name)
        return {
            "problem": self.spec.problem.name.lower(),
            "n": self.spec.problem.n,
            "problem_seed": self.spec.problem.seed,
            "problem_params": dict(self.spec.problem.params),
            "mixer": mixer_name,
            "mixer_params": dict(self.spec.mixer.params),
            "strategy": self.strategy,
            "strategy_params": dict(self.spec.strategy.params),
            "p": self.spec.p,
            "seed": self.spec.seed,
            "value": float(self.value),
            "optimum": float(self.optimum),
            "approximation_ratio": (
                None if self.approximation_ratio is None else float(self.approximation_ratio)
            ),
            "ground_state_probability": float(self.ground_state_probability),
            "evaluations": int(self.evaluations),
            "angles": [float(a) for a in self.angles],
            "wall_time_s": float(self.wall_time_s),
        }


class QAOASolver:
    """A :class:`SolveSpec` resolved into live objects, ready to run.

    Construction regenerates the problem instance, pre-computes its objective
    values and builds the mixer; :meth:`run` executes the angle strategy and
    final simulation.  Keep the solver around to re-run the same spec with
    different seeds (the expensive pre-computation is reused)::

        solver = QAOASolver(spec)
        results = [solver.run(seed=s) for s in range(10)]
    """

    def __init__(self, spec: SolveSpec | Mapping[str, Any]):
        if not isinstance(spec, SolveSpec):
            spec = SolveSpec.from_dict(spec)
        self.spec = spec
        self.problem: ProblemInstance = make_problem(
            spec.problem.name,
            spec.problem.n,
            seed=spec.problem.seed,
            **spec.problem.params,
        )
        self.mixer: Mixer = make_mixer(spec.mixer.name, self.problem.space, **spec.mixer.params)
        self.ansatz: QAOAAnsatz = QAOAAnsatz.from_problem(self.problem, self.mixer, spec.p)

    def find_angles(self, *, seed: int | None = None) -> AngleResult:
        """Run just the angle strategy (``seed`` overrides the spec's)."""
        rng_seed = self.spec.seed if seed is None else seed
        return run_strategy(
            self.spec.strategy.name,
            self.ansatz,
            rng=np.random.default_rng(rng_seed),
            **self.spec.strategy.params,
        )

    def run(self, *, seed: int | None = None) -> SolveResult:
        """Full solve: angle search, final simulation, metrics."""
        started = time.perf_counter()
        angle_result = self.find_angles(seed=seed)
        simulation = self.ansatz.simulate(angle_result.angles)
        wall_time = time.perf_counter() - started

        optimum = self.problem.optimum()
        ratio = float(angle_result.value) / optimum if optimum > 0 else None
        spec = self.spec
        if seed is not None and seed != spec.seed:
            spec = SolveSpec(
                problem=spec.problem,
                mixer=spec.mixer,
                strategy=spec.strategy,
                p=spec.p,
                seed=seed,
            )
        return SolveResult(
            spec=spec,
            angles=angle_result.angles,
            value=float(angle_result.value),
            optimum=optimum,
            approximation_ratio=ratio,
            ground_state_probability=simulation.ground_state_probability(),
            evaluations=int(angle_result.evaluations),
            strategy=angle_result.strategy,
            wall_time_s=wall_time,
            angle_result=angle_result,
            simulation=simulation,
        )


def solve(spec: SolveSpec | Mapping[str, Any] | None = None, **kwargs) -> SolveResult:
    """Run one declarative QAOA solve.

    Either pass a ready :class:`SolveSpec` (or its dict form)::

        result = solve(SolveSpec(problem=ProblemSpec("maxcut", 8), mixer="x",
                                 strategy="random", p=3, seed=0))

    or use the flat keyword form, which builds the spec via
    :meth:`SolveSpec.build`::

        result = solve(problem="maxcut", n=8, mixer="x", strategy="random", p=3)
    """
    if spec is None:
        spec = SolveSpec.build(**kwargs)
    elif kwargs:
        raise TypeError("pass either a spec or keyword arguments, not both")
    return QAOASolver(spec).run()
