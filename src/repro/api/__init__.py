"""Declarative solver facade: specs, registries, and ``solve()``.

The public surface of the paper's end-to-end toolchain as one call::

    from repro import solve
    result = solve(problem="maxcut", n=8, mixer="x", strategy="random", p=3)

Specs (:class:`SolveSpec` and its parts) are JSON-round-trippable, the mixer
and strategy registries resolve names case-insensitively, and every
registered strategy returns a normalized
:class:`~repro.angles.result.AngleResult` through the :class:`AngleStrategy`
protocol.
"""

from .mixers import MIXER_NAMES, MIXERS, make_mixer
from .registry import Registry, RegistryError
from .routing import ExecutionPlan, select_execution_path
from .solver import QAOASolver, SolveResult, solve
from .spec import MixerSpec, ProblemSpec, SolveSpec, StrategySpec
from .strategies import (
    STRATEGIES,
    STRATEGY_NAMES,
    AngleStrategy,
    find_strategy,
    run_strategy,
)

__all__ = [
    "MIXER_NAMES",
    "MIXERS",
    "make_mixer",
    "Registry",
    "RegistryError",
    "ExecutionPlan",
    "select_execution_path",
    "QAOASolver",
    "SolveResult",
    "solve",
    "MixerSpec",
    "ProblemSpec",
    "SolveSpec",
    "StrategySpec",
    "STRATEGIES",
    "STRATEGY_NAMES",
    "AngleStrategy",
    "find_strategy",
    "run_strategy",
]
