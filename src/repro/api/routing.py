"""Execution-path selection for ``solve()``: dense, sharded, or compressed.

Every spec-driven solve runs through exactly one of three engines:

* **dense** — the in-process :class:`~repro.core.ansatz.QAOAAnsatz`
  (scalar + batched kernels).  Default whenever the statevector comfortably
  fits one process.
* **sharded** — :class:`~repro.hpc.sharded.ShardedAnsatz`: the statevector
  distributed across shard worker processes in shared memory.  Selected when
  ``REPRO_SHARDS`` requests it or the dimension crosses
  :data:`SHARDED_AUTO_DIM`; supports the ``x``, ``multiangle_x`` and
  ``grover`` mixer families (Dicke subspaces: ``grover`` only).
* **compressed** — :class:`~repro.grover.ansatz.CompressedGroverAnsatz`:
  Grover-mixer evolution over the distinct-value spectrum (paper Sec. 2.4).
  Selected for Grover-mixer specs whose spectrum is both *obtainable*
  (analytic for Hamming-weight objectives at any ``n``, streamed degeneracy
  counting below :data:`STREAMING_SPECTRUM_LIMIT`) and *degenerate enough*
  (``distinct * COMPRESSED_ADVANTAGE <= dim``) above
  :data:`COMPRESSED_MIN_DIM`.

Priority: compressed beats sharded beats dense (the compressed state is
``O(distinct)`` — smaller than any shard).  Strategies that rebuild per-round
ansatze (``iterative``, ``fourier``) always run dense: they consume the dense
cost object and per-layer schedules.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..grover.compress import (
    CompressedObjective,
    compress_streaming,
    compress_streaming_dicke,
    hamming_weight_spectrum,
)
from ..problems.registry import ProblemStructure, make_problem_structure
from .mixers import MIXERS
from .spec import ProblemSpec, SolveSpec
from .strategies import STRATEGIES

__all__ = [
    "ExecutionPlan",
    "select_execution_path",
    "memoized_structure",
    "spectrum_for",
    "env_shards",
    "COMPRESSED_MIN_DIM",
    "COMPRESSED_ADVANTAGE",
    "SHARDED_AUTO_DIM",
    "STREAMING_SPECTRUM_LIMIT",
]

#: Below this dimension the dense path is always fine — keeps every
#: small-instance solve byte-identical with the pre-routing behaviour.
COMPRESSED_MIN_DIM = 1 << 12

#: The compressed path must shrink the state by at least this factor.
COMPRESSED_ADVANTAGE = 8

#: Full-space dimension at which sharding engages without ``REPRO_SHARDS``.
SHARDED_AUTO_DIM = 1 << 24

#: Largest dimension the router will *stream over* to discover a spectrum.
#: Above it only analytic (Hamming-weight) spectra are available.
STREAMING_SPECTRUM_LIMIT = 1 << 20

#: Mixer families with a sharded decomposition.
SHARDED_MIXERS = frozenset({"x", "multiangle_x", "grover"})

#: Strategies that rebuild per-round dense ansatze and cannot be re-routed.
DENSE_ONLY_STRATEGIES = frozenset({"iterative", "fourier"})


@dataclass(frozen=True)
class ExecutionPlan:
    """Which engine a solve runs on, and the numbers that decided it."""

    path: str  # "dense" | "sharded" | "compressed"
    reason: str
    dim: int
    shards: int | None = None
    distinct: int | None = None

    def describe(self) -> str:
        """One human-readable line (what ``repro solve --explain`` prints)."""
        extras = [f"dim={self.dim}"]
        if self.shards is not None:
            extras.append(f"shards={self.shards}")
        if self.distinct is not None:
            extras.append(f"distinct={self.distinct}")
        return f"{self.path} ({', '.join(extras)}): {self.reason}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "reason": self.reason,
            "dim": self.dim,
            "shards": self.shards,
            "distinct": self.distinct,
        }


# ---------------------------------------------------------------------------
# memoized structure + spectrum discovery
# ---------------------------------------------------------------------------

_STRUCTURE_MEMO_CAPACITY = 32
_structure_memo: OrderedDict[str, ProblemStructure] = OrderedDict()
_spectrum_memo: OrderedDict[str, CompressedObjective | None] = OrderedDict()
_memo_lock = threading.Lock()


def _problem_key(problem: ProblemSpec) -> str:
    return json.dumps(problem.to_dict(), sort_keys=True)


def memoized_structure(problem: ProblemSpec) -> ProblemStructure:
    """The space-free :class:`ProblemStructure` for ``problem``, memoized.

    Structures never materialize the feasible space, so they are cheap — but
    routing consults them on every solve and the closures inside are reused
    by the sharded workers, so one instance per spec keeps everything
    consistent.
    """
    key = _problem_key(problem)
    with _memo_lock:
        cached = _structure_memo.get(key)
        if cached is not None:
            _structure_memo.move_to_end(key)
            return cached
    structure = make_problem_structure(
        problem.name, problem.n, seed=problem.seed, **problem.params
    )
    with _memo_lock:
        _structure_memo[key] = structure
        _structure_memo.move_to_end(key)
        while len(_structure_memo) > _STRUCTURE_MEMO_CAPACITY:
            _structure_memo.popitem(last=False)
    return structure


def spectrum_for(problem: ProblemSpec) -> CompressedObjective | None:
    """The compressed value spectrum of ``problem``, or ``None`` if unobtainable.

    Analytic Hamming-weight spectra work at any ``n``; otherwise the objective
    is streamed over the feasible space (chunked, never materialized) up to
    :data:`STREAMING_SPECTRUM_LIMIT` states.  Results — including the
    negative ``None`` — are memoized per problem spec.
    """
    key = _problem_key(problem)
    with _memo_lock:
        if key in _spectrum_memo:
            _spectrum_memo.move_to_end(key)
            return _spectrum_memo[key]
    structure = memoized_structure(problem)
    spectrum: CompressedObjective | None = None
    if structure.k is None and structure.value_of_weight is not None:
        spectrum = hamming_weight_spectrum(structure.n, structure.value_of_weight)
    elif structure.dim <= STREAMING_SPECTRUM_LIMIT:
        if structure.k is None:
            spectrum = compress_streaming(structure.cost_vectorized, structure.n)
        else:
            spectrum = compress_streaming_dicke(
                structure.cost_vectorized, structure.n, structure.k
            )
    with _memo_lock:
        _spectrum_memo[key] = spectrum
        _spectrum_memo.move_to_end(key)
        while len(_spectrum_memo) > _STRUCTURE_MEMO_CAPACITY:
            _spectrum_memo.popitem(last=False)
    return spectrum


def clear_routing_memo() -> None:
    """Drop memoized structures and spectra (tests)."""
    with _memo_lock:
        _structure_memo.clear()
        _spectrum_memo.clear()


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------

def env_shards(environ: os._Environ | dict | None = None) -> int | None:
    """The ``REPRO_SHARDS`` request: ``None`` when unset or explicitly <= 1."""
    environ = os.environ if environ is None else environ
    raw = environ.get("REPRO_SHARDS", "").strip()
    if not raw:
        return None
    try:
        count = int(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SHARDS must be an integer, got {raw!r}") from exc
    return count if count >= 2 else None


def _auto_shards(dim: int) -> int:
    """Power-of-two shard count targeting ~2^23 states per shard, in [2, 16]."""
    shards = 2
    while shards < 16 and dim // shards > (1 << 23):
        shards *= 2
    return shards


def _canonical(registry, name: str) -> str:
    try:
        return registry.canonical(name)
    except KeyError:
        return name.lower()


def select_execution_path(
    spec: SolveSpec, *, shards: int | None = None
) -> ExecutionPlan:
    """Pick the engine for ``spec`` (see the module docstring for the rules).

    ``shards`` overrides the ``REPRO_SHARDS`` environment knob.
    """
    structure = memoized_structure(spec.problem)
    dim = structure.dim
    mixer = _canonical(MIXERS, spec.mixer.name)
    strategy = _canonical(STRATEGIES, spec.strategy.name)

    if strategy in DENSE_ONLY_STRATEGIES:
        return ExecutionPlan(
            "dense",
            f"strategy {strategy!r} rebuilds per-round dense ansatze",
            dim,
        )

    if mixer == "grover" and dim > COMPRESSED_MIN_DIM:
        spectrum = spectrum_for(spec.problem)
        if spectrum is not None:
            distinct = spectrum.num_distinct
            if distinct * COMPRESSED_ADVANTAGE <= dim:
                return ExecutionPlan(
                    "compressed",
                    f"grover mixer with degenerate spectrum "
                    f"({distinct} distinct values over {dim} states)",
                    dim,
                    distinct=distinct,
                )

    requested = shards if shards is not None else env_shards()
    source = "shards override" if shards is not None else f"REPRO_SHARDS={requested}"
    shardable = mixer in SHARDED_MIXERS
    if shardable and mixer != "grover":
        # WHT mixers shard the full space over power-of-two worker counts.
        shardable = structure.k is None

    if requested is not None:
        if not shardable:
            return ExecutionPlan(
                "dense",
                f"{source} ignored: mixer {mixer!r} "
                "has no sharded decomposition"
                + ("" if structure.k is None else " on a Dicke subspace"),
                dim,
            )
        count = requested
        if mixer != "grover" and (count & (count - 1) or dim % count):
            return ExecutionPlan(
                "dense",
                f"{source} ignored: WHT mixers need a "
                f"power-of-two shard count dividing dim={dim}",
                dim,
            )
        count = min(count, dim)
        return ExecutionPlan(
            "sharded", f"{source} requested {requested} shards", dim, shards=count
        )

    if dim >= SHARDED_AUTO_DIM and shardable:
        count = _auto_shards(dim)
        return ExecutionPlan(
            "sharded",
            f"dim {dim} >= {SHARDED_AUTO_DIM} exceeds the single-process "
            "comfort zone",
            dim,
            shards=count,
        )

    if dim >= SHARDED_AUTO_DIM:
        return ExecutionPlan(
            "dense",
            f"dim {dim} is large but mixer {mixer!r} has no sharded or "
            "compressed path — expect heavy memory use",
            dim,
        )
    return ExecutionPlan("dense", "statevector fits one process", dim)
