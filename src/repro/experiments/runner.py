"""Sharded, resumable execution of experiment work-lists.

The runner turns an experiment name into a deterministic task list
(:func:`repro.experiments.tasks.enumerate_tasks`), filters out tasks already
recorded in the :class:`~repro.experiments.store.RunStore`, and executes the
rest across worker processes via
:func:`repro.hpc.parallel.parallel_imap_unordered`.  Results stream back to
the parent, which appends each task's rows to the store as soon as they
arrive — so a crash or Ctrl-C at any point loses at most the in-flight tasks
and a re-run resumes from the manifest.

Two levels of sharding compose:

* ``workers`` — processes on this machine (``REPRO_WORKERS``/CPU default);
* ``shard=(index, count)`` — a static 1-of-``count`` slice of the work-list
  for fanning a sweep across machines/CI jobs that share nothing but the
  task enumeration.  Shards may write to the same store directory — even
  truly simultaneously: each writer appends to its own segment file (named
  after ``writer_id``, default ``shard-I-of-M``) and every manifest update
  happens under the store's cross-process lock, so completed tasks are
  skipped wherever and whenever they ran.  Simultaneous writers on
  *different machines* additionally need the shared filesystem to propagate
  the lock between hosts (see the README's concurrency-semantics section);
  same-machine writers and different-time writers are always safe.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..hpc.parallel import parallel_imap_unordered
from .store import RunStore
from .tasks import EXPERIMENT_NAMES, RowTask, enumerate_tasks, execute_task, get_experiment

__all__ = [
    "RunReport",
    "run_experiment",
    "run_many",
    "store_directory",
    "all_experiment_names",
    "scale_env",
]

SCALES = ("quick", "paper")


@dataclass(frozen=True)
class RunReport:
    """What one :func:`run_experiment` call did."""

    experiment: str
    directory: Path
    scale: str
    total_tasks: int
    shard_tasks: int
    skipped: int
    executed: int
    rows_total: int
    duration_s: float
    #: Whether the whole work-list (not just this shard) is now recorded complete.
    complete: bool


def store_directory(out_dir: str | Path, experiment: str, scale: str) -> Path:
    """Canonical store location for one experiment at one scale."""
    return Path(out_dir) / f"{experiment}-{scale}"


@contextmanager
def scale_env(scale: str):
    """Pin ``REPRO_BENCH_SCALE`` for enumeration and (forked) workers."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    old = os.environ.get("REPRO_BENCH_SCALE")
    os.environ["REPRO_BENCH_SCALE"] = scale
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_BENCH_SCALE", None)
        else:
            os.environ["REPRO_BENCH_SCALE"] = old


def _execute_timed(task: RowTask) -> tuple[list[dict], float]:
    start = time.perf_counter()
    rows = execute_task(task)
    return rows, time.perf_counter() - start


def run_experiment(
    name: str,
    *,
    scale: str = "quick",
    out_dir: str | Path = "runs",
    workers: int | None = None,
    overrides: dict | None = None,
    shard: tuple[int, int] = (0, 1),
    writer_id: str | None = None,
    log: Callable[[str], None] | None = None,
) -> RunReport:
    """Run (or resume) one experiment sweep into its run store.

    ``shard=(i, m)`` executes only tasks whose work-list index is congruent
    to ``i`` modulo ``m``.  ``writer_id`` names this writer's append-only row
    segment in the store (default ``shard-I-of-M``), which is what lets
    several shard runners write one store directory at the same time without
    contending on row bytes.  Returns a :class:`RunReport`; the rows
    themselves live in the store (``RunStore.open(report.directory).rows()``).
    """
    spec = get_experiment(name)
    shard_index, shard_count = shard
    if shard_count < 1 or not 0 <= shard_index < shard_count:
        raise ValueError(f"invalid shard {shard_index}/{shard_count}")
    writer_id = writer_id or f"shard-{shard_index + 1}-of-{shard_count}"
    emit = log or (lambda _msg: None)
    started = time.perf_counter()
    with scale_env(scale):
        tasks = enumerate_tasks(name, overrides)
        directory = store_directory(out_dir, name, scale)
        store = RunStore.create_or_resume(
            directory,
            experiment=name,
            scale=scale,
            tasks=tasks,
            overrides=overrides,
            writer_id=writer_id,
        )
        my_tasks = [t for i, t in enumerate(tasks) if i % shard_count == shard_index]
        pending = store.pending(my_tasks)
        skipped = len(my_tasks) - len(pending)
        shard_note = (
            f", shard {shard_index + 1}/{shard_count} -> {len(my_tasks)}" if shard_count > 1 else ""
        )
        resume_note = f", resuming past {skipped} completed" if skipped else ""
        emit(
            f"[{name}] {spec.title}: {len(tasks)} task(s) "
            f"at scale={scale}{shard_note}{resume_note}"
        )
        executed = 0
        for index, (rows, duration) in parallel_imap_unordered(
            _execute_timed, pending, processes=workers
        ):
            task = pending[index]
            store.record(task.task_id, rows, duration_s=duration)
            executed += 1
            emit(
                f"[{name}] {executed}/{len(pending)} {task.task_id}: "
                f"{len(rows)} row(s) in {duration:.2f}s"
            )
        report = RunReport(
            experiment=name,
            directory=directory,
            scale=scale,
            total_tasks=len(tasks),
            shard_tasks=len(my_tasks),
            skipped=skipped,
            executed=executed,
            rows_total=len(store.rows()),
            duration_s=time.perf_counter() - started,
            complete=store.is_complete(),
        )
    emit(
        f"[{name}] done: {report.executed} executed, {report.skipped} skipped, "
        f"{report.rows_total} row(s) in store ({report.directory})"
    )
    return report


def run_many(
    names: list[str] | tuple[str, ...],
    *,
    scale: str = "quick",
    out_dir: str | Path = "runs",
    workers: int | None = None,
    overrides: dict | None = None,
    shard: tuple[int, int] = (0, 1),
    writer_id: str | None = None,
    log: Callable[[str], None] | None = None,
) -> list[RunReport]:
    """Run several experiments in sequence (``names=EXPERIMENT_NAMES`` for ``all``)."""
    return [
        run_experiment(
            name,
            scale=scale,
            out_dir=out_dir,
            workers=workers,
            overrides=overrides,
            shard=shard,
            writer_id=writer_id,
            log=log,
        )
        for name in names
    ]


def all_experiment_names() -> tuple[str, ...]:
    """The canonical experiment order used by ``repro run all``."""
    return EXPERIMENT_NAMES
