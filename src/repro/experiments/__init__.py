"""Experiment orchestration: enumerable figure sweeps, run stores, sharded runner.

This package turns the paper's figure reproductions into first-class,
resumable experiments: :mod:`~repro.experiments.tasks` decomposes each figure
into a deterministic work-list, :mod:`~repro.experiments.store` persists rows
and progress crash-safely, and :mod:`~repro.experiments.runner` shards the
work across processes.  The ``python -m repro`` CLI is a thin shell over
these APIs.
"""

from .runner import RunReport, all_experiment_names, run_experiment, run_many, store_directory
from .store import RunStore, RunStoreError
from .tasks import (
    EXPERIMENT_NAMES,
    ExperimentSpec,
    RowTask,
    enumerate_tasks,
    execute_task,
    get_experiment,
)

__all__ = [
    "RunReport",
    "all_experiment_names",
    "run_experiment",
    "run_many",
    "store_directory",
    "RunStore",
    "RunStoreError",
    "EXPERIMENT_NAMES",
    "ExperimentSpec",
    "RowTask",
    "enumerate_tasks",
    "execute_task",
    "get_experiment",
]
