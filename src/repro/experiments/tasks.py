"""Deterministic work-list decomposition of the paper's figure sweeps.

Each experiment (one per figure, plus the Grover-compression study of
Sec. 2.4) is described by an :class:`ExperimentSpec` that can *enumerate* its
work as a list of :class:`RowTask` units and *execute* any single unit
independently.  Tasks carry only JSON-serializable parameters, so they can be
pickled to worker processes, recorded in a run-store manifest, and re-derived
bit-for-bit on resume.  Concatenating the row lists of an experiment's tasks
in enumeration order reproduces exactly what the corresponding
``repro.bench.figures.run_figure*`` call returns.

Granularity follows the data dependencies of each figure: Fig. 2 shards per
problem/mixer case, Figs. 4a/4b per grid point, Fig. 5 per round count, and
the Grover study per instance size.  Fig. 3 couples all instances through the
median-angle strategy (medians are taken across the ensemble), so it is a
single task by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..api.spec import ProblemSpec, SolveSpec
from ..bench.figures import (
    figure2_case_rows,
    figure4a_point_rows,
    figure4a_points,
    figure4b_point_rows,
    figure4b_points,
    figure5_round_rows,
    figure5_round_values,
    grover_dense_rows,
    grover_large_rows,
    run_figure3,
)
from ..bench.portfolio import portfolio_rows
from ..bench.workloads import FIGURE2_CASE_LABELS, bench_scale

__all__ = [
    "RowTask",
    "ExperimentSpec",
    "EXPERIMENT_NAMES",
    "get_experiment",
    "enumerate_tasks",
    "execute_task",
    "solve_spec_rows",
]


@dataclass(frozen=True)
class RowTask:
    """One independently executable unit of a figure sweep.

    ``task_id`` is stable across runs at the same scale/overrides and is what
    the run store uses to skip completed work on resume.  ``params`` are the
    keyword arguments of the experiment's executor function.
    """

    experiment: str
    task_id: str
    params: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, enumerable experiment (one figure of the paper)."""

    name: str
    title: str
    enumerate: Callable[[dict], list[RowTask]]
    executor: Callable[..., list[dict]]
    override_keys: tuple[str, ...]


def _check_overrides(spec_name: str, overrides: dict, allowed: tuple[str, ...]) -> dict:
    unknown = sorted(set(overrides) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown override(s) {unknown} for experiment {spec_name!r}; "
            f"allowed keys: {sorted(allowed)}"
        )
    return dict(overrides)


# ---------------------------------------------------------------------------
# Per-figure enumerators
# ---------------------------------------------------------------------------

_FIG2_KEYS = ("p_max", "n", "seed", "n_hops", "rng_seed")


def _fig2_tasks(overrides: dict) -> list[RowTask]:
    params = _check_overrides("fig2", overrides, _FIG2_KEYS)
    return [
        RowTask("fig2", f"case={label}", {"case_index": index, **params})
        for index, label in enumerate(FIGURE2_CASE_LABELS)
    ]


_FIG3_KEYS = ("p_max", "num_instances", "n", "random_iters", "n_hops", "rng_seed")


def _fig3_tasks(overrides: dict) -> list[RowTask]:
    params = _check_overrides("fig3", overrides, _FIG3_KEYS)
    # The median-angle strategy couples every instance of the ensemble, so the
    # whole figure is one unit of work.
    return [RowTask("fig3", "ensemble", params)]


_FIG4A_KEYS = ("p", "repeats", "seed", "include_dense")


def _fig4a_tasks(overrides: dict) -> list[RowTask]:
    params = _check_overrides("fig4a", overrides, _FIG4A_KEYS)
    include_dense = params.pop("include_dense", None)
    return [
        RowTask("fig4a", f"sim={sim}/n={n}", {"simulator": sim, "n": n, **params})
        for sim, n in figure4a_points(include_dense=include_dense)
    ]


_FIG4B_KEYS = ("n", "repeats", "seed", "include_dense")


def _fig4b_tasks(overrides: dict) -> list[RowTask]:
    params = _check_overrides("fig4b", overrides, _FIG4B_KEYS)
    include_dense = bool(params.pop("include_dense", False))
    n, points = figure4b_points(params.pop("n", None), include_dense=include_dense)
    return [
        RowTask("fig4b", f"sim={sim}/p={p}", {"simulator": sim, "p": p, "n": n, **params})
        for sim, p in points
    ]


_FIG5_KEYS = ("num_instances", "n", "maxiter", "rng_seed", "round_values")


def _fig5_tasks(overrides: dict) -> list[RowTask]:
    params = _check_overrides("fig5", overrides, _FIG5_KEYS)
    round_values = params.pop("round_values", None)
    if round_values is None:
        round_values = figure5_round_values()
    return [RowTask("fig5", f"p={p}", {"p": int(p), **params}) for p in round_values]


_GROVER_KEYS = ("p", "repeats", "dense_qubits", "large_qubits")


def _grover_tasks(overrides: dict) -> list[RowTask]:
    params = _check_overrides("grover", overrides, _GROVER_KEYS)
    dense_qubits = params.pop("dense_qubits", (8, 10, 12))
    large_qubits = params.pop("large_qubits", (40, 100))
    tasks = [
        RowTask("grover", f"dense/n={n}", {"kind": "dense", "n": int(n), **params})
        for n in dense_qubits
    ]
    tasks.extend(
        RowTask("grover", f"large/n={n}", {"kind": "large", "n": int(n), **params})
        for n in large_qubits
    )
    return tasks


def _execute_grover(kind: str, n: int, **kwargs) -> list[dict]:
    if kind == "dense":
        return grover_dense_rows(n, **kwargs)
    if kind == "large":
        return grover_large_rows(n, **kwargs)
    raise ValueError(f"unknown grover task kind {kind!r}")


# ---------------------------------------------------------------------------
# Portfolio racing (anytime curves across instances x deadlines)
# ---------------------------------------------------------------------------

_PORTFOLIO_KEYS = ("instances", "deadlines", "racers", "p", "seed")

#: Default instance x deadline grids: a tiny CI-friendly pair, and the
#: benchmark workloads at paper scale.
_PORTFOLIO_DEFAULTS = {
    "quick": {
        "instances": (
            {"problem": "maxcut", "n": 6, "mixer": "x"},
            {"problem": "densest_subgraph", "n": 7, "problem_params": {"k": 3}, "mixer": "clique"},
        ),
        "deadlines": (0.5, 2.0),
        "p": 2,
        "seed": 0,
    },
    "paper": {
        "instances": (
            {"problem": "maxcut", "n": 10, "mixer": "x"},
            {"problem": "densest_subgraph", "n": 11, "problem_params": {"k": 5}, "mixer": "clique"},
        ),
        "deadlines": (1.0, 5.0, 15.0),
        "p": 2,
        "seed": 0,
    },
}


def _portfolio_tasks(overrides: dict) -> list[RowTask]:
    params = _check_overrides("portfolio", overrides, _PORTFOLIO_KEYS)
    grid = {**_PORTFOLIO_DEFAULTS[bench_scale()], **params}
    racers = grid.get("racers")
    deadlines = grid["deadlines"]
    if isinstance(deadlines, (int, float)):
        deadlines = (deadlines,)
    tasks = []
    for instance in _grid_entries(grid, "instances"):
        for deadline in deadlines:
            task_params: dict = {
                "instance": dict(instance),
                "deadline_s": float(deadline),
                "p": int(grid["p"]),
                "seed": int(grid["seed"]),
            }
            if racers is not None:
                task_params["racers"] = racers
            tasks.append(
                RowTask(
                    "portfolio",
                    f"problem={instance['problem']}/n={instance['n']}/deadline={deadline}",
                    task_params,
                )
            )
    return tasks


# ---------------------------------------------------------------------------
# Spec-driven solve sweeps (arbitrary problem x mixer x strategy grids)
# ---------------------------------------------------------------------------

_SOLVE_KEYS = ("specs", "problems", "mixers", "strategies", "n", "p", "seeds")

#: Default grids per scale: a tiny CI-friendly smoke grid, and a broader one.
_SOLVE_DEFAULTS = {
    "quick": {
        "problems": ("maxcut",),
        "mixers": ("x", "grover"),
        "strategies": (
            {"name": "random", "params": {"iters": 8}},
            {"name": "grid", "params": {"resolution": 6}},
        ),
        "n": 6,
        "p": 2,
        "seeds": (0,),
    },
    "paper": {
        "problems": ("maxcut", "ksat"),
        "mixers": ("x", "grover"),
        "strategies": (
            {"name": "random", "params": {"iters": 50}},
            {"name": "grid", "params": {"resolution": 8}},
            {"name": "multistart", "params": {"iters": 50}},
        ),
        "n": 10,
        "p": 2,
        "seeds": (0, 1, 2),
    },
}


def _solve_task_id(spec: SolveSpec) -> str:
    return (
        f"problem={spec.problem.name}/mixer={spec.mixer.name}/"
        f"strategy={spec.strategy.name}/n={spec.problem.n}/p={spec.p}/seed={spec.seed}"
    )


def _solve_tasks(overrides: dict) -> list[RowTask]:
    params = _check_overrides("solve", overrides, _SOLVE_KEYS)
    specs = params.pop("specs", None)
    if specs is not None:
        if params:
            raise ValueError(
                f"--set specs cannot be combined with grid keys ({sorted(params)}); "
                "encode everything in the spec list"
            )
        resolved = [SolveSpec.from_dict(entry) for entry in specs]
    else:
        grid = {**_SOLVE_DEFAULTS[bench_scale()], **params}
        n = _grid_int(grid, "n")
        p = _grid_int(grid, "p")
        seeds = grid["seeds"]
        if isinstance(seeds, int):
            seeds = (seeds,)
        # SolveSpec's own coercion accepts bare names and {"name": ..,
        # "params": ..} mappings for mixer/strategy entries.
        resolved = [
            SolveSpec(
                problem=ProblemSpec(str(problem), n, seed=int(seed)),
                mixer=mixer,
                strategy=strategy,
                p=p,
                seed=int(seed),
            )
            for problem in _grid_entries(grid, "problems")
            for mixer in _grid_entries(grid, "mixers")
            for strategy in _grid_entries(grid, "strategies")
            for seed in seeds
        ]

    tasks: list[RowTask] = []
    seen: dict[str, int] = {}
    for spec in resolved:
        task_id = _solve_task_id(spec)
        # Explicit spec lists may repeat a (problem, mixer, strategy, seed)
        # summary with different params; disambiguate by occurrence index so
        # task ids stay unique and stable in enumeration order.
        count = seen.get(task_id, 0)
        seen[task_id] = count + 1
        if count:
            task_id = f"{task_id}#{count}"
        tasks.append(RowTask("solve", task_id, {"spec": spec.to_dict()}))
    return tasks


def _grid_entries(grid: dict, key: str) -> tuple:
    """A list-valued grid key; a bare name or single mapping becomes a singleton.

    ``--set problems=maxcut`` leaves a plain string in the overrides, and
    iterating it directly would enumerate its *characters* as problem names.
    """
    value = grid[key]
    if isinstance(value, (str, Mapping)):
        return (value,)
    return tuple(value)


def _grid_int(grid: dict, key: str) -> int:
    """A scalar-int grid key, rejected with a clean message (not a traceback)."""
    value = grid[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"solve grid key {key!r} must be a single integer, got {value!r}; "
            "to sweep several values, enumerate explicit specs via --set specs=[...]"
        )
    return value


def solve_spec_rows(spec: Mapping) -> list[dict]:
    """Execute one spec-driven solve task (runs inside worker processes).

    Routed through each worker's :func:`repro.service.default_service`, so a
    params-only grid re-uses one warm problem/mixer/ansatz per fingerprint
    instead of rebuilding spectra row by row (and, when ``REPRO_RESULT_CACHE``
    is set, answers repeated specs from the shared result cache).
    """
    from ..service import default_service

    return [default_service().solve(SolveSpec.from_dict(spec)).to_row()]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        ExperimentSpec(
            name="fig2",
            title="Figure 2 — quality vs rounds for four problem/mixer pairs",
            enumerate=_fig2_tasks,
            executor=figure2_case_rows,
            override_keys=_FIG2_KEYS,
        ),
        ExperimentSpec(
            name="fig3",
            title="Figure 3 — angle-finding strategy comparison (slowest figure)",
            enumerate=_fig3_tasks,
            executor=run_figure3,
            override_keys=_FIG3_KEYS,
        ),
        ExperimentSpec(
            name="fig4a",
            title="Figure 4a — time & memory vs qubits (p=1 MaxCut)",
            enumerate=_fig4a_tasks,
            executor=figure4a_point_rows,
            override_keys=_FIG4A_KEYS,
        ),
        ExperimentSpec(
            name="fig4b",
            title="Figure 4b — time vs rounds (fixed-n MaxCut)",
            enumerate=_fig4b_tasks,
            executor=figure4b_point_rows,
            override_keys=_FIG4B_KEYS,
        ),
        ExperimentSpec(
            name="fig5",
            title="Figure 5 — BFGS with finite-difference vs adjoint gradients",
            enumerate=_fig5_tasks,
            executor=figure5_round_rows,
            override_keys=_FIG5_KEYS,
        ),
        ExperimentSpec(
            name="grover",
            title="Sec. 2.4 — Grover-mixer value compression",
            enumerate=_grover_tasks,
            executor=_execute_grover,
            override_keys=_GROVER_KEYS,
        ),
        ExperimentSpec(
            name="portfolio",
            title="Portfolio racing — anytime curves across instances x deadlines",
            enumerate=_portfolio_tasks,
            executor=portfolio_rows,
            override_keys=_PORTFOLIO_KEYS,
        ),
        ExperimentSpec(
            name="solve",
            title="Spec-driven solves — arbitrary problem x mixer x strategy grids",
            enumerate=_solve_tasks,
            executor=solve_spec_rows,
            override_keys=_SOLVE_KEYS,
        ),
    )
}

#: Canonical experiment order (the order ``repro run all`` executes).
EXPERIMENT_NAMES = tuple(_EXPERIMENTS)


def get_experiment(name: str) -> ExperimentSpec:
    """Look up an experiment by name (raises ``KeyError`` with choices listed)."""
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(_EXPERIMENTS)}") from None


def enumerate_tasks(name: str, overrides: dict | None = None) -> list[RowTask]:
    """The deterministic work-list of an experiment at the active bench scale.

    The list depends on ``REPRO_BENCH_SCALE`` (via the workload generators),
    which is why the runner records the scale in the manifest and re-applies
    it before enumerating on resume.
    """
    bench_scale()  # validate the active scale early, with the usual error
    return _EXPERIMENTS[name].enumerate(dict(overrides or {}))


def execute_task(task: RowTask) -> list[dict]:
    """Execute one task and return its result rows (runs inside worker processes)."""
    spec = get_experiment(task.experiment)
    return spec.executor(**task.params)
