"""Crash-safe persistence for experiment sweeps.

A :class:`RunStore` is a directory holding two files:

``manifest.json``
    The run's identity (experiment, scale, overrides), the full ordered task
    work-list, and a map of completed tasks.  Written atomically (temp file +
    rename, the idiom of :mod:`repro.angles.checkpoint`) so readers never see
    a torn manifest.

``rows.jsonl``
    Append-only result rows, one JSON object per line, each tagged with the
    task that produced it.  Rows are fsynced *before* their task is marked
    complete in the manifest, so the manifest's ``completed`` map is the
    single source of truth: a crash between the two writes merely leaves
    orphan rows, which are compacted away the next time the store is opened.

An interrupted sweep therefore resumes by re-enumerating the work-list,
skipping every task in ``completed``, and appending the rest.  Reading rows
back yields them grouped in work-list order regardless of the (possibly
sharded, unordered) execution order.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterable, Sequence

from ..io.results import append_jsonl, read_jsonl, write_json_atomic
from .tasks import RowTask

__all__ = ["RunStore", "RunStoreError", "MANIFEST_NAME", "ROWS_NAME"]

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
ROWS_NAME = "rows.jsonl"


class RunStoreError(RuntimeError):
    """A run store is missing, corrupt, or incompatible with the requested run."""


class RunStore:
    """One experiment run persisted under ``directory`` (see module docstring)."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.manifest_path = self.directory / MANIFEST_NAME
        self.rows_path = self.directory / ROWS_NAME
        self._manifest: dict | None = None

    # ------------------------------------------------------------------
    # Creation / opening
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory: str | Path) -> "RunStore":
        """Open an existing store for reading, failing clearly if there is none.

        Opening never mutates the store (``repro status``/``report`` must be
        safe to run while a sweep is writing): orphan rows from a crashed
        append are filtered out at read time by :meth:`rows` and compacted
        away only by the writing runner (:meth:`create_or_resume`).
        """
        store = cls(directory)
        if not store.manifest_path.exists():
            raise RunStoreError(f"no run store at {store.directory} (missing {MANIFEST_NAME})")
        store._load_manifest()
        return store

    @classmethod
    def create_or_resume(
        cls,
        directory: str | Path,
        *,
        experiment: str,
        scale: str,
        tasks: Sequence[RowTask],
        overrides: dict | None = None,
    ) -> "RunStore":
        """Create a fresh store, or validate + compact an existing one for resume.

        Resuming requires the stored run to match the requested experiment,
        scale, overrides and task work-list exactly; anything else would
        silently mix incompatible rows, so it raises :class:`RunStoreError`
        (pick a new directory or delete the old run).
        """
        store = cls(directory)
        # Normalize to JSON-canonical form (tuples -> lists, numpy scalars ->
        # floats) so the comparison against a manifest that round-tripped
        # through json.dump treats an identical re-run as identical.
        overrides = json.loads(json.dumps(dict(overrides or {}), default=float))
        task_ids = [t.task_id for t in tasks]
        if len(set(task_ids)) != len(task_ids):
            raise RunStoreError(f"duplicate task ids in {experiment!r} work-list")
        if store.manifest_path.exists():
            store._load_manifest()
            store._check_compatible(experiment, scale, task_ids, overrides)
            store._compact_orphan_rows()
            return store
        store._manifest = {
            "format_version": FORMAT_VERSION,
            "experiment": experiment,
            "scale": scale,
            "overrides": overrides,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "task_ids": task_ids,
            "completed": {},
        }
        store._save_manifest()
        return store

    def _load_manifest(self) -> None:
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        version = int(data.get("format_version", 0))
        if version != FORMAT_VERSION:
            raise RunStoreError(
                f"unsupported run-store format version {version} at {self.manifest_path}"
            )
        self._manifest = data

    def _save_manifest(self) -> None:
        assert self._manifest is not None
        write_json_atomic(self.manifest_path, self._manifest)

    def _check_compatible(
        self, experiment: str, scale: str, task_ids: list[str], overrides: dict
    ) -> None:
        manifest = self.manifest
        mismatches = []
        if manifest["experiment"] != experiment:
            mismatches.append(f"experiment {manifest['experiment']!r} != {experiment!r}")
        if manifest["scale"] != scale:
            mismatches.append(f"scale {manifest['scale']!r} != {scale!r}")
        if manifest.get("overrides", {}) != overrides:
            mismatches.append(f"overrides {manifest.get('overrides', {})!r} != {overrides!r}")
        if manifest["task_ids"] != task_ids:
            mismatches.append("task work-list differs")
        if mismatches:
            raise RunStoreError(
                f"existing run at {self.directory} is incompatible with the requested run "
                f"({'; '.join(mismatches)}); use a fresh output directory or delete the old run"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def manifest(self) -> dict:
        if self._manifest is None:
            self._load_manifest()
        assert self._manifest is not None
        return self._manifest

    @property
    def experiment(self) -> str:
        return str(self.manifest["experiment"])

    @property
    def scale(self) -> str:
        return str(self.manifest["scale"])

    def task_ids(self) -> list[str]:
        """The full ordered work-list recorded at creation time."""
        return list(self.manifest["task_ids"])

    def completed_ids(self) -> set[str]:
        """Tasks whose rows are durably stored."""
        return set(self.manifest["completed"])

    def is_complete(self) -> bool:
        """Whether every task of the work-list has completed."""
        return self.completed_ids() >= set(self.manifest["task_ids"])

    def pending(self, tasks: Iterable[RowTask]) -> list[RowTask]:
        """The subset of ``tasks`` not yet completed, preserving order."""
        done = self.completed_ids()
        return [t for t in tasks if t.task_id not in done]

    def status(self) -> dict:
        """A machine-readable progress summary (used by ``repro status``)."""
        manifest = self.manifest
        completed = manifest["completed"]
        return {
            "experiment": manifest["experiment"],
            "scale": manifest["scale"],
            "directory": str(self.directory),
            "tasks": len(manifest["task_ids"]),
            "completed": len(completed),
            "rows": int(sum(entry["rows"] for entry in completed.values())),
            "state": "complete" if self.is_complete() else "partial",
        }

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(self, task_id: str, rows: Sequence[dict], *, duration_s: float = 0.0) -> None:
        """Durably store one task's rows and mark the task complete.

        Rows hit disk (fsync) before the manifest update, so a crash in
        between leaves recoverable state: the task re-runs on resume and its
        orphan rows are compacted away.
        """
        manifest = self.manifest
        if task_id not in manifest["task_ids"]:
            raise RunStoreError(f"task {task_id!r} is not in this run's work-list")
        if task_id in manifest["completed"]:
            raise RunStoreError(f"task {task_id!r} is already recorded")
        append_jsonl(
            self.rows_path,
            [{"task_id": task_id, "row": dict(row)} for row in rows],
        )
        # Merge completions another shard may have recorded since we loaded the
        # manifest, so writers targeting the same store don't drop each other's
        # entries (shards are still expected to avoid fully simultaneous starts;
        # see the runner docstring).
        if self.manifest_path.exists():
            self._load_manifest()
            manifest = self.manifest
        manifest["completed"][task_id] = {
            "rows": len(rows),
            "duration_s": round(float(duration_s), 6),
        }
        self._save_manifest()

    def _compact_orphan_rows(self) -> None:
        """Drop rows whose task never completed (crash between append and manifest)."""
        records = read_jsonl(self.rows_path)
        completed = self.completed_ids()
        kept = [r for r in records if r.get("task_id") in completed]
        if len(kept) != len(records):
            # Rewrite the JSONL atomically: fresh temp content, then replace.
            tmp = self.rows_path.with_name(ROWS_NAME + ".tmp")
            if tmp.exists():
                tmp.unlink()
            append_jsonl(tmp, kept)
            tmp.replace(self.rows_path)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def rows(self) -> list[dict]:
        """All rows of completed tasks, grouped in work-list order.

        Orphan rows (task never marked complete) are skipped, and each task's
        rows are capped at the count its manifest entry recorded, so neither a
        crashed append nor a double-recorded task can inflate the results.
        """
        records = read_jsonl(self.rows_path)
        completed = self.manifest["completed"]
        by_task: dict[str, list[dict]] = {}
        for record in records:
            task_id = record.get("task_id")
            if task_id in completed:
                by_task.setdefault(task_id, []).append(record["row"])
        ordered: list[dict] = []
        for task_id in self.manifest["task_ids"]:
            if task_id in completed:
                ordered.extend(by_task.get(task_id, [])[: completed[task_id]["rows"]])
        return ordered
