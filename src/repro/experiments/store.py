"""Crash-safe, concurrency-safe persistence for experiment sweeps.

A :class:`RunStore` is a directory holding:

``manifest.json``
    The run's identity (experiment, scale, overrides), the full ordered task
    work-list, and a map of completed tasks.  Written atomically (temp file +
    rename, the idiom of :mod:`repro.angles.checkpoint`) so readers never see
    a torn manifest.

``rows.jsonl`` / ``rows-<writer_id>.jsonl``
    Append-only result rows, one JSON object per line, each tagged with the
    task that produced it.  A store opened with a ``writer_id`` appends to its
    own *segment* file ``rows-<writer_id>.jsonl`` (so concurrent writers never
    touch the same bytes); without one it uses the shared legacy ``rows.jsonl``.
    Rows are fsynced *before* their task is marked complete in the manifest,
    so the manifest's ``completed`` map is the single source of truth: a crash
    between the two writes merely leaves orphan rows, which are compacted away
    the next time a writing runner opens the store.

``store.lock``
    The cross-process advisory lock (:class:`repro.io.locking.FileLock`).
    Every mutation — manifest creation, the reload-merge-save in
    :meth:`record`, orphan-row compaction — runs while it is held, which is
    what makes truly simultaneous writers to one store directory safe: no
    completion can be lost to a manifest read-modify-write race, no two
    compactions can clobber each other's temp file, and no append can truncate
    another writer's in-flight line.

Each completed-task manifest entry records which segment its rows live in, so
:meth:`rows` can merge all segments at read time and still cap every task at
the exact row count its (single, winning) writer recorded — a task recorded by
two racing writers contributes rows from the winner's segment only.

An interrupted sweep resumes by re-enumerating the work-list, skipping every
task in ``completed``, and appending the rest.  Reading rows back yields them
grouped in work-list order regardless of the (possibly sharded, unordered,
multi-writer) execution order.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
import warnings
from pathlib import Path
from typing import Iterable, Sequence

from ..io.locking import FileLock
from ..io.results import append_jsonl, read_jsonl, write_json_atomic
from .tasks import RowTask

__all__ = [
    "RunStore",
    "RunStoreError",
    "MANIFEST_NAME",
    "ROWS_NAME",
    "LOCK_NAME",
    "segment_name",
]

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
ROWS_NAME = "rows.jsonl"
LOCK_NAME = "store.lock"

#: Writer ids become file-name components, so keep them boring and portable.
_WRITER_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def segment_name(writer_id: str) -> str:
    """The row-segment file name owned by ``writer_id``."""
    return f"rows-{writer_id}.jsonl"


class RunStoreError(RuntimeError):
    """A run store is missing, corrupt, or incompatible with the requested run."""


class RunStore:
    """One experiment run persisted under ``directory`` (see module docstring)."""

    def __init__(self, directory: str | Path, *, writer_id: str | None = None):
        if writer_id is not None and not _WRITER_ID_PATTERN.match(writer_id):
            raise RunStoreError(
                f"invalid writer id {writer_id!r}: use 1-64 characters from [A-Za-z0-9._-], "
                "starting with a letter or digit"
            )
        self.directory = Path(directory)
        self.writer_id = writer_id
        self.manifest_path = self.directory / MANIFEST_NAME
        self.rows_path = self.directory / ROWS_NAME
        self.segment_path = (
            self.directory / segment_name(writer_id) if writer_id else self.rows_path
        )
        self.lock = FileLock(self.directory / LOCK_NAME)
        self._manifest: dict | None = None

    # ------------------------------------------------------------------
    # Creation / opening
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory: str | Path) -> "RunStore":
        """Open an existing store for reading, failing clearly if there is none.

        Opening never mutates the store and never takes the lock (``repro
        status``/``report`` must be safe to run while a sweep is writing):
        orphan rows from a crashed append are filtered out at read time by
        :meth:`rows` and compacted away only by a writing runner
        (:meth:`create_or_resume`).
        """
        store = cls(directory)
        if not store.manifest_path.exists():
            raise RunStoreError(f"no run store at {store.directory} (missing {MANIFEST_NAME})")
        store._load_manifest()
        return store

    @classmethod
    def create_or_resume(
        cls,
        directory: str | Path,
        *,
        experiment: str,
        scale: str,
        tasks: Sequence[RowTask],
        overrides: dict | None = None,
        writer_id: str | None = None,
    ) -> "RunStore":
        """Create a fresh store, or validate + compact an existing one for resume.

        Resuming requires the stored run to match the requested experiment,
        scale, overrides and task work-list exactly; anything else would
        silently mix incompatible rows, so it raises :class:`RunStoreError`
        (pick a new directory or delete the old run).  The whole operation
        runs under the store lock, so two writers creating the same store
        simultaneously serialize into one create followed by one resume.
        """
        store = cls(directory, writer_id=writer_id)
        # Normalize to JSON-canonical form (tuples -> lists, numpy scalars ->
        # floats) so the comparison against a manifest that round-tripped
        # through json.dump treats an identical re-run as identical.
        overrides = json.loads(json.dumps(dict(overrides or {}), default=float))
        task_ids = [t.task_id for t in tasks]
        if len(set(task_ids)) != len(task_ids):
            raise RunStoreError(f"duplicate task ids in {experiment!r} work-list")
        store.directory.mkdir(parents=True, exist_ok=True)
        with store.lock:
            if store.manifest_path.exists():
                store._load_manifest()
                store._check_compatible(experiment, scale, task_ids, overrides)
                store._compact_orphan_rows()
                return store
            store._manifest = {
                "format_version": FORMAT_VERSION,
                "experiment": experiment,
                "scale": scale,
                "overrides": overrides,
                "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                "task_ids": task_ids,
                "completed": {},
            }
            store._save_manifest()
            return store

    def _load_manifest(self) -> None:
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        version = int(data.get("format_version", 0))
        if version != FORMAT_VERSION:
            raise RunStoreError(
                f"unsupported run-store format version {version} at {self.manifest_path}"
            )
        self._manifest = data

    def _save_manifest(self) -> None:
        assert self._manifest is not None
        write_json_atomic(self.manifest_path, self._manifest)

    def _check_compatible(
        self, experiment: str, scale: str, task_ids: list[str], overrides: dict
    ) -> None:
        manifest = self.manifest
        mismatches = []
        if manifest["experiment"] != experiment:
            mismatches.append(f"experiment {manifest['experiment']!r} != {experiment!r}")
        if manifest["scale"] != scale:
            mismatches.append(f"scale {manifest['scale']!r} != {scale!r}")
        if manifest.get("overrides", {}) != overrides:
            mismatches.append(f"overrides {manifest.get('overrides', {})!r} != {overrides!r}")
        if manifest["task_ids"] != task_ids:
            mismatches.append("task work-list differs")
        if mismatches:
            raise RunStoreError(
                f"existing run at {self.directory} is incompatible with the requested run "
                f"({'; '.join(mismatches)}); use a fresh output directory or delete the old run"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def manifest(self) -> dict:
        if self._manifest is None:
            self._load_manifest()
        assert self._manifest is not None
        return self._manifest

    @property
    def experiment(self) -> str:
        return str(self.manifest["experiment"])

    @property
    def scale(self) -> str:
        return str(self.manifest["scale"])

    def task_ids(self) -> list[str]:
        """The full ordered work-list recorded at creation time."""
        return list(self.manifest["task_ids"])

    def completed_ids(self) -> set[str]:
        """Tasks whose rows are durably stored."""
        return set(self.manifest["completed"])

    def is_complete(self) -> bool:
        """Whether every task of the work-list has completed."""
        return self.completed_ids() >= set(self.manifest["task_ids"])

    def pending(self, tasks: Iterable[RowTask]) -> list[RowTask]:
        """The subset of ``tasks`` not yet completed, preserving order."""
        done = self.completed_ids()
        return [t for t in tasks if t.task_id not in done]

    def status(self) -> dict:
        """A machine-readable progress summary (used by ``repro status``)."""
        manifest = self.manifest
        completed = manifest["completed"]
        return {
            "experiment": manifest["experiment"],
            "scale": manifest["scale"],
            "directory": str(self.directory),
            "tasks": len(manifest["task_ids"]),
            "completed": len(completed),
            "rows": int(sum(entry["rows"] for entry in completed.values())),
            "state": "complete" if self.is_complete() else "partial",
        }

    def segment_paths(self) -> list[Path]:
        """Every row file of this store: the shared legacy one plus all segments."""
        return [self.rows_path, *sorted(self.directory.glob("rows-*.jsonl"))]

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(self, task_id: str, rows: Sequence[dict], *, duration_s: float = 0.0) -> None:
        """Durably store one task's rows and mark the task complete.

        The append and the manifest update happen in one lock-protected
        critical section: the manifest is reloaded from disk first, so
        completions other writers recorded since our last load are merged
        rather than lost, and a task another writer already completed is a
        no-op warning (the redundant append is skipped entirely).  Rows still
        hit disk (fsync) before the manifest update, so a crash in between
        leaves recoverable state: the task re-runs on resume and its orphan
        rows are compacted away.

        The segment append deliberately stays inside the critical section
        even though the segment file is private to this writer: another
        writer's :meth:`create_or_resume` may be compacting (rewriting) this
        very segment under the lock, and an unlocked append racing that
        mkstemp+replace could be silently dropped after its fsync but before
        the manifest commit.  The expensive work — executing the task — has
        already happened outside the lock; what is serialized here is only
        the small row flush and the manifest write.
        """
        if task_id not in self.manifest["task_ids"]:
            raise RunStoreError(f"task {task_id!r} is not in this run's work-list")
        with self.lock:
            if self.manifest_path.exists():
                self._load_manifest()
            manifest = self.manifest
            if task_id in manifest["completed"]:
                warnings.warn(
                    f"task {task_id!r} is already recorded in {self.directory} "
                    "(another writer finished it first); skipping the redundant append",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return
            append_jsonl(
                self.segment_path,
                [{"task_id": task_id, "row": dict(row)} for row in rows],
                lock=self.lock,
            )
            manifest["completed"][task_id] = {
                "rows": len(rows),
                "duration_s": round(float(duration_s), 6),
                "segment": self.segment_path.name,
            }
            self._save_manifest()

    def _compact_orphan_rows(self) -> None:
        """Drop rows whose task never completed (crash between append and manifest).

        Runs under the store lock (see :meth:`create_or_resume`).  Every
        segment is compacted independently; the temp file comes from
        :func:`tempfile.mkstemp`, so two compacting writers — already
        serialized by the lock — can never clobber a shared fixed temp name.
        Rows of a completed task living outside the segment its manifest entry
        names (a duplicate-record race loser that crashed before the no-op
        check existed, or after appending) are orphans too.
        """
        completed = self.manifest["completed"]
        for seg_path in self.segment_paths():
            records = read_jsonl(seg_path)
            # Keep, per completed task recorded in this segment, only the
            # LAST entry["rows"] records: a crashed append by an earlier
            # writer with the same writer_id can leave complete orphan lines
            # for a task *before* the committed run of the same task, and
            # those must not survive to mix into reads.
            budget: dict[str, int] = {}
            kept_reversed = []
            for record in reversed(records):
                entry = completed.get(record.get("task_id"))
                if entry is None or entry.get("segment", ROWS_NAME) != seg_path.name:
                    continue
                remaining = budget.setdefault(record["task_id"], int(entry["rows"]))
                if remaining <= 0:
                    continue
                budget[record["task_id"]] = remaining - 1
                kept_reversed.append(record)
            kept = kept_reversed[::-1]
            if len(kept) == len(records):
                continue
            if not kept:
                seg_path.unlink(missing_ok=True)
                continue
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.directory), prefix=seg_path.name + ".", suffix=".tmp"
            )
            try:
                os.close(fd)
                append_jsonl(tmp_name, kept)
                os.replace(tmp_name, seg_path)
            except BaseException:
                if os.path.exists(tmp_name):
                    os.unlink(tmp_name)
                raise

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def rows(self) -> list[dict]:
        """All rows of completed tasks, grouped in work-list order.

        Segments are merged at read time.  Orphan rows (task never marked
        complete, or living in a segment other than the one the task's
        manifest entry names) are skipped, and each task yields only the
        *last* ``rows`` records its manifest entry counted: the committed
        append is always the segment's final run for that task, while any
        complete lines an earlier same-``writer_id`` crash left behind sit
        before it.  So neither a crashed append, a double-recorded task, nor
        a lost duplicate-writer race can inflate, corrupt, or reorder the
        results.
        """
        completed = self.manifest["completed"]
        by_task: dict[str, list[dict]] = {}
        for seg_path in self.segment_paths():
            seg = seg_path.name
            for record in read_jsonl(seg_path):
                entry = completed.get(record.get("task_id"))
                if entry is not None and entry.get("segment", ROWS_NAME) == seg:
                    by_task.setdefault(record["task_id"], []).append(record["row"])
        ordered: list[dict] = []
        for task_id in self.manifest["task_ids"]:
            if task_id in completed:
                found = by_task.get(task_id, [])
                count = int(completed[task_id]["rows"])
                ordered.extend(found[-count:] if count else [])
        return ordered
