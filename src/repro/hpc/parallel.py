"""Multi-process evaluation of objective values and degeneracy counts.

This is the CPU analogue of the paper's "spread across many threads or GPUs"
pre-computation: the feasible space is partitioned into chunks
(:mod:`repro.hpc.partition`), each worker evaluates its chunk with the
vectorized cost function, and the partial results are concatenated (objective
vectors) or merged (compressed degeneracy spectra).

Callables passed to the process pool must be picklable (module-level functions
or :func:`functools.partial` of them).  ``processes=1`` short-circuits to a
serial loop so the same code path works in restricted environments and in
tests.
"""

from __future__ import annotations

import os
import warnings
from functools import partial
from multiprocessing import get_context
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..grover.compress import CompressedObjective, compress_objective
from ..hilbert.bitops import ints_to_bit_matrix
from .partition import Chunk, chunk_labels, split_dicke_space, split_full_space

__all__ = [
    "default_workers",
    "evaluate_chunk",
    "parallel_objective_values",
    "parallel_compress",
    "parallel_imap_unordered",
]


def default_workers() -> int:
    """Number of worker processes to use by default (``REPRO_WORKERS`` or CPU count)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring invalid REPRO_WORKERS value {env!r}; "
                "expected a positive integer, falling back to the CPU count",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, os.cpu_count() or 1)


def _pool_context():
    """The multiprocessing context used for worker pools (fork where available)."""
    try:
        return get_context("fork")
    except ValueError:  # platforms without fork (e.g. Windows)
        return get_context()


def evaluate_chunk(
    chunk: Chunk,
    cost_vectorized: Callable[[np.ndarray], np.ndarray],
    n: int,
    k: int | None = None,
) -> np.ndarray:
    """Objective values of a single chunk (runs inside a worker process)."""
    labels = chunk_labels(chunk, n, k)
    if labels.size == 0:
        return np.zeros(0, dtype=np.float64)
    bits = ints_to_bit_matrix(labels, n)
    return np.asarray(cost_vectorized(bits), dtype=np.float64)


def _compress_chunk(
    chunk: Chunk,
    cost_vectorized: Callable[[np.ndarray], np.ndarray],
    n: int,
    k: int | None = None,
    decimals: int | None = None,
) -> CompressedObjective | None:
    vals = evaluate_chunk(chunk, cost_vectorized, n, k)
    if vals.size == 0:
        # An empty chunk contributes nothing.  It must NOT be encoded as a
        # value-0.0 single-state spectrum: merge() would fold that phantom
        # state in as real, inflating the total, shifting the mean, and even
        # becoming the reported optimum when all true values are negative.
        return None
    return compress_objective(vals, decimals=decimals)


def _run_chunks(worker, chunks: Sequence[Chunk], processes: int):
    if processes <= 1 or len(chunks) <= 1:
        return [worker(chunk) for chunk in chunks]
    with _pool_context().Pool(processes=min(processes, len(chunks))) as pool:
        return pool.map(worker, chunks)


def _apply_indexed(worker, indexed):
    index, item = indexed
    return index, worker(item)


def parallel_imap_unordered(
    worker: Callable,
    items: Iterable,
    *,
    processes: int | None = None,
) -> Iterator[tuple[int, object]]:
    """Yield ``(index, worker(item))`` pairs as results complete, in any order.

    This is the streaming analogue of :func:`_run_chunks` used by the
    experiment runner: results are handed back as soon as a worker finishes so
    the caller can persist them incrementally (crash-safe sweeps).  With
    ``processes<=1`` or a single item the work runs serially in-process, which
    keeps the code path identical in restricted environments and in tests.
    ``worker`` must be picklable (a module-level function or
    :func:`functools.partial` of one) when more than one process is used.
    """
    items = list(items)
    processes = default_workers() if processes is None else max(1, processes)
    if processes <= 1 or len(items) <= 1:
        for pair in enumerate(items):
            yield _apply_indexed(worker, pair)
        return
    with _pool_context().Pool(processes=min(processes, len(items))) as pool:
        yield from pool.imap_unordered(partial(_apply_indexed, worker), enumerate(items))


def parallel_objective_values(
    cost_vectorized: Callable[[np.ndarray], np.ndarray],
    n: int,
    *,
    k: int | None = None,
    processes: int | None = None,
) -> np.ndarray:
    """Objective values over the full (or weight-``k``) space, computed across workers.

    Returns the values in the canonical state order (ascending labels for the
    full space, ascending weight-``k`` labels for Dicke spaces), matching what
    the serial pre-computation would produce.
    """
    processes = default_workers() if processes is None else max(1, processes)
    chunks = (
        split_full_space(n, processes) if k is None else split_dicke_space(n, k, processes)
    )
    worker = partial(evaluate_chunk, cost_vectorized=cost_vectorized, n=n, k=k)
    pieces = _run_chunks(worker, chunks, processes)
    return np.concatenate([p for p in pieces if p.size]) if pieces else np.zeros(0)


def parallel_compress(
    cost_vectorized: Callable[[np.ndarray], np.ndarray],
    n: int,
    *,
    k: int | None = None,
    processes: int | None = None,
    decimals: int | None = None,
) -> CompressedObjective:
    """Distinct objective values + degeneracies computed across workers and merged.

    This is the multi-worker degeneracy counting of Sec. 2.4: each worker
    compresses its own chunk, and the partial spectra are merged without any
    worker (or the parent) ever holding the full value vector.
    """
    processes = default_workers() if processes is None else max(1, processes)
    chunks = (
        split_full_space(n, processes) if k is None else split_dicke_space(n, k, processes)
    )
    chunks = [c for c in chunks if c.size > 0]
    worker = partial(_compress_chunk, cost_vectorized=cost_vectorized, n=n, k=k, decimals=decimals)
    pieces = [p for p in _run_chunks(worker, chunks, processes) if p is not None]
    if not pieces:
        # Mirrors CompressedObjective.__post_init__'s contract instead of the
        # bare IndexError a pieces[0] lookup would raise.
        raise ValueError(
            "cannot compress an empty feasible space: "
            "compressed spectrum must contain at least one value"
        )
    merged = pieces[0]
    for piece in pieces[1:]:
        merged = merged.merge(piece)
    return merged
