"""Memory accounting helpers.

Figure 4a of the paper reports both CPU time and *memory usage* as a function
of qubit count for the different simulators.  These helpers provide the two
measurements the benchmark harness uses:

* analytic estimates (:func:`statevector_bytes`, :func:`eigendecomposition_bytes`,
  :func:`simulator_memory_estimate`) — deterministic, hardware-independent,
  and exactly what distinguishes the direct simulator (a handful of length-2^n
  vectors) from a dense-unitary circuit simulator (2^n x 2^n matrices);
* measured peaks (:func:`measure_peak_allocation`) via :mod:`tracemalloc`, and
  the process RSS (:func:`rss_bytes`) for end-to-end numbers.
"""

from __future__ import annotations

import tracemalloc
from typing import Callable

__all__ = [
    "statevector_bytes",
    "eigendecomposition_bytes",
    "dense_unitary_bytes",
    "simulator_memory_estimate",
    "sharded_state_bytes",
    "warm_entry_bytes",
    "measure_peak_allocation",
    "rss_bytes",
    "peak_rss_bytes",
]

_COMPLEX_BYTES = 16  # numpy complex128
_FLOAT_BYTES = 8  # numpy float64


def statevector_bytes(dim: int) -> int:
    """Bytes of one complex128 statevector of dimension ``dim``."""
    if dim < 1:
        raise ValueError("dimension must be positive")
    return dim * _COMPLEX_BYTES


def eigendecomposition_bytes(dim: int, complex_vectors: bool = False) -> int:
    """Bytes of a cached mixer eigendecomposition (``V`` plus its eigenvalues)."""
    if dim < 1:
        raise ValueError("dimension must be positive")
    per_entry = _COMPLEX_BYTES if complex_vectors else _FLOAT_BYTES
    return dim * dim * per_entry + dim * _FLOAT_BYTES


def dense_unitary_bytes(dim: int) -> int:
    """Bytes of one dense complex unitary of dimension ``dim`` (circuit-baseline cost)."""
    if dim < 1:
        raise ValueError("dimension must be positive")
    return dim * dim * _COMPLEX_BYTES


def simulator_memory_estimate(
    n: int,
    *,
    kind: str = "direct",
    subspace_dim: int | None = None,
) -> int:
    """Rough working-set estimate (bytes) for one QAOA simulation.

    ``kind`` is one of:

    * ``"direct"`` — this package's unconstrained path: statevector + scratch +
      objective values + mixer diagonal,
    * ``"direct_subspace"`` — the constrained path: subspace vectors plus the
      dense ``V`` of the mixer eigendecomposition,
    * ``"layer"`` — a per-layer dense-matrix circuit simulator (QAOA.jl-like),
    * ``"dense"`` — a full dense-unitary circuit simulator (QAOAKit-like).
    """
    dim = 1 << n
    if kind == "direct":
        return 2 * statevector_bytes(dim) + 2 * dim * _FLOAT_BYTES
    if kind == "direct_subspace":
        if subspace_dim is None:
            raise ValueError("subspace_dim is required for the constrained estimate")
        return (
            2 * statevector_bytes(subspace_dim)
            + eigendecomposition_bytes(subspace_dim)
            + subspace_dim * _FLOAT_BYTES
        )
    if kind == "layer":
        return statevector_bytes(dim) + 2 * dense_unitary_bytes(dim)
    if kind == "dense":
        return statevector_bytes(dim) + 3 * dense_unitary_bytes(dim)
    raise ValueError(f"unknown simulator kind {kind!r}")


def sharded_state_bytes(
    dim: int,
    shards: int,
    *,
    batch: int = 1,
    slots: int = 2,
) -> int:
    """Resident bytes of *one* shard worker of a sharded execution.

    A worker pins its chunk of every shared state buffer (``slots`` segments
    of ``ceil(dim / shards) * batch`` complex entries — 2 for forward
    evolution, 3 once the adjoint gradient ran) plus its chunk of the
    objective values.  The largest chunk is used, so this is the per-process
    number the peak-RSS gate compares against
    :func:`simulator_memory_estimate`; multiply by ``shards`` for the
    node-wide total.
    """
    if dim < 1:
        raise ValueError("dimension must be positive")
    if shards < 1:
        raise ValueError("shard count must be positive")
    if shards > dim:
        raise ValueError(f"cannot split dim {dim} into {shards} shards")
    if batch < 1:
        raise ValueError("batch must be positive")
    if slots < 1:
        raise ValueError("a worker holds at least one state buffer")
    local_dim = -(-dim // shards)  # ceil
    return local_dim * (slots * batch * _COMPLEX_BYTES + _FLOAT_BYTES)


def warm_entry_bytes(
    dim: int,
    *,
    p: int = 1,
    batch_capacity: int = 0,
    dense_eigenvectors: bool = False,
    complex_vectors: bool = False,
    kind: str = "dense",
    shards: int | None = None,
    distinct: int | None = None,
) -> int:
    """Estimated resident bytes of one warm solver-service pool entry.

    ``kind`` selects the execution engine the entry holds:

    * ``"dense"`` — sums the components a kept-alive ``(problem, mixer, p)``
      entry pins in memory: the objective values, the scalar
      :class:`Workspace` (three statevectors plus the ``p``-layer adjoint
      store), the three core ``(dim, M)`` matrices of a
      :class:`BatchedWorkspace` grown to ``batch_capacity`` columns (plus its
      adjoint layer store and aux matrix when gradients ran), and — for
      diagonalized mixer families — the dense eigendecomposition.
    * ``"sharded"`` — the node-wide total across all ``shards`` workers:
      per-shard state segments and values
      (:func:`sharded_state_bytes`, 3 slots once gradients ran) plus each
      worker's private ``p``-layer adjoint store.
    * ``"compressed"`` — the ``(distinct, M)`` class-amplitude matrices of a
      compressed Grover engine (``dim`` is ignored for sizing and may exceed
      2^53; pass the true dimension for reporting).

    Raises ``ValueError`` for entries it cannot size — an unknown ``kind``,
    or a ``sharded``/``compressed`` entry without its ``shards``/``distinct``
    count — rather than returning a silently wrong number.  This is the
    accounting the warm pool's byte-budget eviction runs on.
    """
    if p < 1:
        raise ValueError("round count must be positive")
    if batch_capacity < 0:
        raise ValueError("batch capacity must be non-negative")
    if kind == "dense":
        if dim < 1:
            raise ValueError("dimension must be positive")
        total = dim * _FLOAT_BYTES  # objective values
        total += 3 * statevector_bytes(dim)  # scalar workspace: state/scratch/adjoint
        total += p * 2 * statevector_bytes(dim)  # scalar per-layer adjoint store
        if batch_capacity:
            per_matrix = statevector_bytes(dim) * batch_capacity
            total += 3 * per_matrix  # state/scratch/phase
            total += per_matrix  # aux (adjoint Hamiltonian products)
            total += p * 2 * per_matrix  # batched forward-layer store
        if dense_eigenvectors:
            total += eigendecomposition_bytes(dim, complex_vectors=complex_vectors)
        return total
    if kind == "sharded":
        if shards is None or shards < 1:
            raise ValueError(
                "cannot size a sharded warm entry without its shard count; "
                "pass shards=<worker count>"
            )
        batch = max(1, batch_capacity)
        per_worker = sharded_state_bytes(dim, shards, batch=batch, slots=3)
        local_dim = -(-dim // shards)
        per_worker += p * 2 * local_dim * batch * _COMPLEX_BYTES  # layer store
        return shards * per_worker
    if kind == "compressed":
        if distinct is None or distinct < 1:
            raise ValueError(
                "cannot size a compressed warm entry without its "
                "distinct-value count; pass distinct=<spectrum size>"
            )
        batch = max(1, batch_capacity)
        total = distinct * 2 * _FLOAT_BYTES  # values + degeneracies
        total += (2 + p * 2) * distinct * batch * _COMPLEX_BYTES  # state + layers
        return total
    raise ValueError(
        f"cannot size warm entries of kind {kind!r} "
        "(known kinds: 'dense', 'sharded', 'compressed')"
    )


def measure_peak_allocation(func: Callable[[], object]) -> tuple[object, int]:
    """Run ``func`` and return ``(result, peak allocated bytes)`` via tracemalloc.

    Only Python/numpy heap allocations made while the tracer is active are
    counted, which makes the number reproducible across machines (unlike RSS).
    """
    tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = func()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def rss_bytes() -> int:
    """Current resident set size of this process in bytes (0 if unavailable)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


def peak_rss_bytes(pid: int | None = None) -> int:
    """Peak resident set size (``VmHWM``) of a process in bytes (0 if unavailable).

    This is what the large-scale benchmark gates on: unlike
    :func:`measure_peak_allocation` it sees shared-memory pages and
    C-extension allocations, and unlike :func:`rss_bytes` it cannot miss a
    transient peak between samples.
    """
    path = "/proc/self/status" if pid is None else f"/proc/{pid}/status"
    try:
        with open(path, "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0
