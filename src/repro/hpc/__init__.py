"""HPC helpers: state-space partitioning, multi-process pre-computation, memory accounting."""

from .memory import (
    dense_unitary_bytes,
    eigendecomposition_bytes,
    measure_peak_allocation,
    rss_bytes,
    simulator_memory_estimate,
    statevector_bytes,
)
from .parallel import (
    default_workers,
    evaluate_chunk,
    parallel_compress,
    parallel_imap_unordered,
    parallel_objective_values,
)
from .partition import Chunk, chunk_labels, split_dicke_space, split_full_space, split_range

__all__ = [
    "dense_unitary_bytes",
    "eigendecomposition_bytes",
    "measure_peak_allocation",
    "rss_bytes",
    "simulator_memory_estimate",
    "statevector_bytes",
    "default_workers",
    "evaluate_chunk",
    "parallel_compress",
    "parallel_imap_unordered",
    "parallel_objective_values",
    "Chunk",
    "chunk_labels",
    "split_dicke_space",
    "split_full_space",
    "split_range",
]
