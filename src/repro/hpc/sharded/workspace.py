"""Shared-memory segment management for the sharded statevector engine.

:class:`ShardedWorkspace` is the sharded analogue of
:class:`repro.core.workspace.BatchedWorkspace`: it owns the per-shard state
buffers one sharded evolution runs in, hands out *names* instead of arrays
(the coordinator process must never touch the state pages — its resident set
is what the memory gate measures), and supports ``ensure(batch)`` so callers
can re-shape the batch dimension between sweeps.

Layout: per shard, per *slot* (double/triple buffer), one
``multiprocessing.shared_memory`` segment holding a C-contiguous complex128
``(local_dim, batch)`` block — the same state-major orientation as the dense
kernels, so the workers' local Walsh–Hadamard butterflies run on contiguous
memory.  Two slots are enough for forward evolution (the cross-shard
butterfly ping-pongs between them); the adjoint gradient lazily adds a third.

Only the coordinator (the creating process) ever unlinks segments; workers
attach by name and deregister themselves from the resource tracker so a
worker exit cannot destroy segments still in use (CPython < 3.13 tracks
attachments as owned).
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory

__all__ = ["ShardedWorkspace", "attach_segment", "COMPLEX_BYTES"]

COMPLEX_BYTES = 16  # numpy complex128


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without transferring cleanup ownership.

    ``SharedMemory(name=...)`` registers the mapping with the resource
    tracker even for pure attachments, which on CPython < 3.13 treats them as
    owned: a spawn-started worker's tracker would unlink the segment at
    worker exit, and a fork-started worker shares the coordinator's tracker,
    so a worker-side ``unregister`` would erase the *coordinator's*
    registration.  Registration is therefore suppressed for the attach — the
    coordinator's original registration is the only one, and the coordinator
    alone unlinks.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ShardedWorkspace:
    """Owns the shared state segments of one sharded execution.

    Parameters
    ----------
    local_dims:
        Per-shard block sizes (``chunk.size`` of each shard, in order).
    batch:
        Number of statevector columns per block.
    slots:
        Initial number of buffers per shard (2 for forward evolution).
    """

    def __init__(self, local_dims: list[int], batch: int = 1, slots: int = 2):
        if batch < 1:
            raise ValueError("batch must be positive")
        if any(d < 1 for d in local_dims):
            raise ValueError("every shard must hold at least one state")
        self.local_dims = [int(d) for d in local_dims]
        self.batch = int(batch)
        self._uid = f"{os.getpid():x}-{secrets.token_hex(4)}"
        #: segments[slot][shard] -> SharedMemory
        self._segments: list[list[shared_memory.SharedMemory]] = []
        self._closed = False
        self.ensure_slots(slots)

    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        """Number of shards."""
        return len(self.local_dims)

    @property
    def dim(self) -> int:
        """Global statevector dimension."""
        return sum(self.local_dims)

    @property
    def num_slots(self) -> int:
        """Buffers currently allocated per shard."""
        return len(self._segments)

    @property
    def capacity(self) -> int:
        """Current batch width (mirrors ``BatchedWorkspace.capacity``)."""
        return self.batch

    def segment_names(self) -> list[list[str]]:
        """``names[slot][shard]`` — what workers attach by."""
        return [[seg.name for seg in slot] for slot in self._segments]

    def state_bytes(self) -> int:
        """Total bytes across all shards and slots (accounting, not RSS)."""
        per_slot = sum(d * self.batch * COMPLEX_BYTES for d in self.local_dims)
        return per_slot * self.num_slots

    # ------------------------------------------------------------------
    def ensure_slots(self, count: int) -> bool:
        """Grow to at least ``count`` buffers per shard; True if new ones appeared."""
        if self._closed:
            raise RuntimeError("workspace is closed")
        grew = False
        while self.num_slots < count:
            slot_index = self.num_slots
            slot = []
            for shard, local_dim in enumerate(self.local_dims):
                name = f"repro-{self._uid}-b{slot_index}-s{shard}"
                size = local_dim * self.batch * COMPLEX_BYTES
                slot.append(shared_memory.SharedMemory(name=name, create=True, size=size))
            self._segments.append(slot)
            grew = True
        return grew

    def ensure(self, batch: int) -> bool:
        """Re-shape every buffer to ``batch`` columns; True if rebuilt.

        Unlike ``BatchedWorkspace.ensure`` this rebuilds on *any* width change
        (shrinks included): segments are sized exactly, workers re-attach by
        name after a rebuild, and exact sizing is what keeps per-worker
        residency at ``local_dim * batch`` instead of the high-water mark.
        """
        if batch < 1:
            raise ValueError("batch must be positive")
        if batch == self.batch:
            return False
        slots = self.num_slots
        self._unlink_all()
        self.batch = int(batch)
        self._uid = f"{os.getpid():x}-{secrets.token_hex(4)}"
        self.ensure_slots(slots)
        return True

    # ------------------------------------------------------------------
    def _unlink_all(self) -> None:
        for slot in self._segments:
            for seg in slot:
                try:
                    seg.close()
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        self._segments = []

    def close(self) -> None:
        """Unlink every segment (idempotent)."""
        if not self._closed:
            self._unlink_all()
            self._closed = True

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedWorkspace(shards={self.shards}, dim={self.dim}, "
            f"batch={self.batch}, slots={self.num_slots})"
        )
