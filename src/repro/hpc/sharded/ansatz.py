"""Protocol facade putting :class:`ShardedExecutor` on the dense-ansatz surface.

:class:`ShardedAnsatz` exposes the same calling convention as
:class:`repro.core.ansatz.QAOAAnsatz` — ``expectation_batch``,
``value_and_gradient_batch``, the ``loss`` family, ``simulate``,
``random_angles``, ``counter``, ``schedule`` — so the registered angle
strategies (grid, random-restart BFGS, vectorized multi-start, basinhopping,
median) drive a statevector they could never allocate locally.

``schedule.dim`` reports the *global* dimension: batched strategies use it
only for accounting, and the per-worker residency is what actually bounds
batch width.
"""

from __future__ import annotations

import numpy as np

from ...core.gradients import EvaluationCounter
from .executor import ShardedExecutor, ShardedMixerConfig, sharded_mixer_config

__all__ = ["ShardedAnsatz", "ShardedSimulation"]


class _ShardedSchedule:
    """The slice of ``MixerSchedule`` the angle strategies read."""

    def __init__(self, dim: int, p: int, total_betas: int):
        self.dim = int(dim)
        self.p = int(p)
        self.total_betas = int(total_betas)


class ShardedSimulation:
    """Final state of one sharded evolution.

    Scalars (expectation, optimal-state probability, norm) are reduced
    eagerly at construction; per-label quantities (``probabilities``,
    ``sample``) stream through the live executor and therefore require it to
    still be open *and* to still hold this evolution's state (a later
    evolution on the same executor overwrites the buffers).
    """

    def __init__(self, executor: ShardedExecutor, angles: np.ndarray, scalars: dict):
        self._executor = executor
        self.angles = np.asarray(angles, dtype=np.float64).copy()
        self._expectation = float(scalars["expectation"])
        self._gsp = float(scalars["ground_state_probability"])
        self._norm = float(scalars["norm"])

    def expectation(self) -> float:
        """``<C>`` over the feasible space."""
        return self._expectation

    def ground_state_probability(self) -> float:
        """Total probability of measuring an optimal state."""
        return self._gsp

    def norm(self) -> float:
        """Statevector norm (should be 1 up to round-off)."""
        return self._norm

    def _live_executor(self) -> ShardedExecutor:
        if self._executor is None or self._executor._closed:
            raise RuntimeError(
                "the sharded executor backing this simulation is closed; "
                "per-label quantities (probabilities/sample) are only "
                "available while the shard workers are alive"
            )
        return self._executor

    def probabilities(self) -> np.ndarray:
        """Per-label sampling probabilities (small dims only — gathers)."""
        state = self._live_executor().gather_state()
        return np.abs(state) ** 2

    def statevector(self) -> np.ndarray:
        """The gathered final state (small dims only)."""
        return self._live_executor().gather_state()

    def sample(self, shots: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw measurement outcomes (labels) without gathering the state."""
        return self._live_executor().sample(shots, rng)


class ShardedAnsatz:
    """Sharded QAOA engine on the dense-ansatz protocol.

    Parameters
    ----------
    structure:
        A :class:`~repro.problems.registry.ProblemStructure`.
    mixer_name / mixer_params:
        Mixer family spec, resolved via :func:`sharded_mixer_config`
        (``x``, ``multiangle_x``, ``grover``).
    p:
        Number of QAOA rounds.
    shards:
        Worker count (see :class:`ShardedExecutor` constraints).
    """

    def __init__(
        self,
        structure,
        mixer_name: str,
        p: int,
        shards: int,
        *,
        mixer_params: dict | None = None,
        backend=None,
    ):
        config = sharded_mixer_config(mixer_name, structure.n, mixer_params)
        self.executor = ShardedExecutor(structure, config, p, shards)
        self.structure = structure
        self.maximize = bool(structure.maximize)
        self.schedule = _ShardedSchedule(
            structure.dim, p, config.betas_per_round * p
        )
        self.initial_state = None
        if backend is None:
            from ...backend import active_backend

            backend = active_backend()
        self.backend = backend
        self.counter = EvaluationCounter()

    # ------------------------------------------------------------------
    @property
    def mixer_config(self) -> ShardedMixerConfig:
        """The resolved space-free mixer description."""
        return self.executor.mixer

    @property
    def p(self) -> int:
        """Number of QAOA rounds."""
        return self.schedule.p

    @property
    def num_angles(self) -> int:
        """Flat angle vector length (betas then gammas)."""
        return self.schedule.total_betas + self.schedule.p

    @property
    def n(self) -> int:
        """Number of qubits."""
        return self.executor.n

    @property
    def optimum(self) -> float:
        """Best objective value over the feasible space (by sense)."""
        return self.executor.optimum

    @property
    def cost(self):
        raise RuntimeError(
            "the sharded engine has no dense cost object; strategies that "
            "rebuild per-round ansatze ('iterative', 'fourier') require the "
            "dense execution path"
        )

    def random_angles(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Uniformly random angles in ``[0, 2 pi)`` with the right length."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        return 2.0 * np.pi * rng.random(self.num_angles)

    # ------------------------------------------------------------------
    def expectation(self, angles: np.ndarray) -> float:
        """``<C>`` at the given angles."""
        return float(self.expectation_batch(np.asarray(angles)[None, :])[0])

    def expectation_batch(self, angles: np.ndarray) -> np.ndarray:
        """``<C>`` for every row of an ``(M, num_angles)`` angle matrix."""
        angles = np.atleast_2d(np.asarray(angles, dtype=np.float64))
        self.counter.forward_passes += angles.shape[0]
        return self.executor.expectation_batch(angles)

    def value_and_gradient(self, angles: np.ndarray) -> tuple[float, np.ndarray]:
        """Expectation value and exact adjoint-mode gradient."""
        values, grads = self.value_and_gradient_batch(np.asarray(angles)[None, :])
        return float(values[0]), grads[0]

    def value_and_gradient_batch(self, angles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched expectations and exact sharded adjoint gradients."""
        angles = np.atleast_2d(np.asarray(angles, dtype=np.float64))
        self.counter.forward_passes += angles.shape[0]
        self.counter.hamiltonian_applications += angles.shape[0] * self.p
        return self.executor.value_and_gradient_batch(angles)

    # -- objective wrappers for minimizers ---------------------------------
    def loss(self, angles: np.ndarray) -> float:
        """Scalar to *minimize*: ``-<C>`` for maximization problems."""
        value = self.expectation(angles)
        return -value if self.maximize else value

    def loss_and_gradient(self, angles: np.ndarray) -> tuple[float, np.ndarray]:
        """Loss and its gradient (signs consistent with :meth:`loss`)."""
        value, grad = self.value_and_gradient(angles)
        if self.maximize:
            return -value, -grad
        return value, grad

    def loss_and_gradient_batch(self, angles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched loss and gradient (signs consistent with :meth:`loss`)."""
        values, grads = self.value_and_gradient_batch(angles)
        if self.maximize:
            return -values, -grads
        return values, grads

    def simulate(self, angles: np.ndarray) -> ShardedSimulation:
        """Full evolution returning a :class:`ShardedSimulation`."""
        angles = np.asarray(angles, dtype=np.float64).ravel()
        scalars = self.executor.simulate(angles)
        return ShardedSimulation(self.executor, angles, scalars)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the shard workers and release all shared memory."""
        self.executor.close()

    def __enter__(self) -> "ShardedAnsatz":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedAnsatz(n={self.n}, dim={self.executor.dim}, "
            f"shards={self.executor.shards}, mixer={self.executor.mixer.kind!r}, "
            f"p={self.p})"
        )
