"""Sharded statevector execution: shard workers + shared-memory segments.

Public surface:

* :class:`~repro.hpc.sharded.workspace.ShardedWorkspace` — owns the
  per-shard shared-memory state buffers (the sharded analogue of
  ``BatchedWorkspace``).
* :class:`~repro.hpc.sharded.executor.ShardedExecutor` — the
  coordinator/worker engine (forward evolution, fused adjoint gradients,
  reductions, sampling, checkpoints).
* :class:`~repro.hpc.sharded.ansatz.ShardedAnsatz` — the dense-ansatz
  protocol facade the angle strategies drive.
"""

from .ansatz import ShardedAnsatz, ShardedSimulation
from .executor import (
    ShardedExecutionError,
    ShardedExecutor,
    ShardedMixerConfig,
    sharded_mixer_config,
)
from .workspace import ShardedWorkspace, attach_segment

__all__ = [
    "ShardedAnsatz",
    "ShardedSimulation",
    "ShardedExecutor",
    "ShardedExecutionError",
    "ShardedMixerConfig",
    "sharded_mixer_config",
    "ShardedWorkspace",
    "attach_segment",
]
