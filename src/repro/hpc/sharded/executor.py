"""Coordinator/worker engine for sharded statevector evolution.

One :class:`ShardedExecutor` pins each :class:`~repro.hpc.partition.Chunk` of
the feasible space to a long-lived forked worker process.  The statevector
lives entirely in shared-memory segments (see
:class:`~repro.hpc.sharded.workspace.ShardedWorkspace`); the coordinator
holds only angle vectors, partial reductions and segment names — it never
maps a state page, so its resident set stays O(1) in the dimension.

Execution is coordinator-mediated lockstep: every operation is a command
tuple broadcast over per-worker pipes, and the coordinator collects all
acknowledgements before issuing the next command.  That ack barrier is what
makes the cross-shard butterfly exchange race-free — during one butterfly
level every worker reads two source blocks (its own and its partner's) and
writes only its own destination block in the alternate buffer.

Mixer decompositions
--------------------
* ``x`` / ``multiangle_x`` (full space, power-of-two shards): the n-qubit
  Walsh–Hadamard transform factors into a *local* transform over the low
  ``n - s`` bits (in-shard, contiguous) and ``s`` butterfly levels over the
  high bits (cross-shard, one level per shard-index bit).  The mixer layer is
  transform → diagonal eigenphases (evaluated chunk-wise from global labels,
  never materialized whole) → transform back, with the ``2^{-s}`` of the two
  unnormalized butterfly passes folded into the phases — the exact sharded
  analogue of the dense ``XMixer.apply_batch``.
* ``grover`` (any space, any shard count): the rank-one update needs one
  overlap (a per-shard column sum combined by the coordinator) and one
  broadcast axpy.

The adjoint gradient is fused into the transform domain: per round both the
adjoint state and the recorded forward layer are transformed once, all
``d``-weighted imaginary inner products reduce locally, and the inverse mixer
ride shares the same transforms — no Hamiltonian scratch buffer exists
anywhere.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import traceback
from dataclasses import dataclass
from itertools import combinations
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ...hilbert.bitops import ints_to_bit_matrix, popcount
from ...io.locking import FileLock
from ..partition import Chunk, chunk_labels, split_dicke_space, split_full_space
from .workspace import ShardedWorkspace, attach_segment

__all__ = [
    "ShardedMixerConfig",
    "sharded_mixer_config",
    "ShardedExecutor",
    "ShardedExecutionError",
]

#: Largest global dimension ``gather_state`` will materialize coordinator-side.
GATHER_LIMIT = 1 << 22

#: Optimal-state tolerance, matching ``PrecomputedCost.optimal_indices``.
_OPT_RTOL, _OPT_ATOL = 1e-12, 1e-9


class ShardedExecutionError(RuntimeError):
    """A shard worker raised; carries the remote traceback(s)."""


# ---------------------------------------------------------------------------
# mixer configuration (space-free: masks + coefficients, never 2^n arrays)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardedMixerConfig:
    """Space-free description of a mixer family the sharded engine can run.

    ``masks``/``coeffs`` describe the products-of-X terms (``mask_t = sum
    2^q`` over the term's qubits): the Hadamard-basis eigenvalue at global
    index ``y`` is ``sum_t c_t (-1)^{popcount(y & mask_t)}``, which workers
    evaluate chunk-wise.  ``betas_per_round`` is 1 except for multi-angle
    layers (one beta per term).
    """

    kind: str  # "x" | "multiangle_x" | "grover"
    masks: tuple[int, ...] = ()
    coeffs: tuple[float, ...] = ()
    betas_per_round: int = 1

    @property
    def needs_wht(self) -> bool:
        """Whether applying this mixer requires the Walsh–Hadamard pipeline."""
        return self.kind in ("x", "multiangle_x")


def _term_mask(term: Sequence[int], n: int) -> int:
    mask = 0
    for qubit in term:
        qubit = int(qubit)
        if not 0 <= qubit < n:
            raise ValueError(f"qubit index {qubit} out of range for n={n}")
        if mask >> qubit & 1:
            raise ValueError(f"duplicate qubit {qubit} in mixer term {tuple(term)}")
        mask |= 1 << qubit
    return mask


def sharded_mixer_config(name: str, n: int, params: dict | None = None) -> ShardedMixerConfig:
    """Resolve a mixer spec into a :class:`ShardedMixerConfig`.

    Mirrors the term enumeration of :func:`repro.mixers.xmixer.mixer_x` and
    the defaults of the mixer registry factories, without building any
    ``2^n``-sized object.  Raises ``ValueError`` for families without a
    sharded decomposition (the XY families need dense subspace
    eigendecompositions).
    """
    from ...api.mixers import MIXERS

    params = dict(params or {})
    canonical = MIXERS.canonical(name)
    if canonical == "x":
        orders = list(params.pop("orders", (1,)))
        coefficients = params.pop("coefficients", None)
        if params:
            raise ValueError(f"unknown x-mixer parameters {sorted(params)}")
        if not orders:
            raise ValueError("at least one interaction order is required")
        if coefficients is not None and len(coefficients) != len(orders):
            raise ValueError("coefficients must match the number of orders")
        masks: list[int] = []
        coeffs: list[float] = []
        for idx, order in enumerate(orders):
            order = int(order)
            if not 1 <= order <= n:
                raise ValueError(f"interaction order {order} out of range for n={n}")
            weight = 1.0 if coefficients is None else float(coefficients[idx])
            for combo in combinations(range(n), order):
                masks.append(_term_mask(combo, n))
                coeffs.append(weight)
        return ShardedMixerConfig("x", tuple(masks), tuple(coeffs), 1)
    if canonical == "multiangle_x":
        terms = params.pop("terms", None)
        if params:
            raise ValueError(f"unknown multiangle-x parameters {sorted(params)}")
        if terms is None:
            terms = [(i,) for i in range(n)]
        masks = tuple(_term_mask(term, n) for term in terms)
        if not masks:
            raise ValueError("a multi-angle X mixer needs at least one term")
        return ShardedMixerConfig("multiangle_x", masks, (1.0,) * len(masks), len(masks))
    if canonical == "grover":
        if params:
            raise ValueError(f"unknown grover-mixer parameters {sorted(params)}")
        return ShardedMixerConfig("grover")
    raise ValueError(
        f"mixer family {canonical!r} has no sharded execution path "
        "(supported: 'x', 'multiangle_x', 'grover')"
    )


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

@dataclass
class _WorkerConfig:
    index: int
    chunk: Chunk
    n: int
    k: int | None
    shards: int
    cost_vectorized: Callable[[np.ndarray], np.ndarray]
    value_chunk: int = 1 << 16


def _local_wht(block: np.ndarray) -> None:
    """In-place *normalized* WHT along axis 0 of a contiguous (d, M) block."""
    from ...mixers.xmixer import walsh_hadamard_transform

    walsh_hadamard_transform(block, out=block)


class _WorkerState:
    """One shard worker's side of the command protocol."""

    def __init__(self, cfg: _WorkerConfig):
        self.cfg = cfg
        self.local_dim = cfg.chunk.size
        self.names: list[list[str]] = []
        self.batch = 0
        self._own: dict[int, tuple] = {}
        self._partners: dict[tuple[int, int], tuple] = {}
        self.values: np.ndarray | None = None
        self.local_labels: np.ndarray | None = None  # Dicke only
        self.layers: np.ndarray | None = None

    # -- segment plumbing ------------------------------------------------
    def _close_handles(self) -> None:
        for shm, _ in list(self._own.values()) + list(self._partners.values()):
            try:
                shm.close()
            except Exception:
                pass
        self._own.clear()
        self._partners.clear()

    def remap(self, names: list[list[str]], batch: int) -> None:
        self._close_handles()
        self.names = names
        if batch != self.batch:
            self.layers = None
        self.batch = batch

    def view(self, slot: int) -> np.ndarray:
        entry = self._own.get(slot)
        if entry is None:
            shm = attach_segment(self.names[slot][self.cfg.index])
            arr = np.ndarray((self.local_dim, self.batch), dtype=np.complex128, buffer=shm.buf)
            entry = (shm, arr)
            self._own[slot] = entry
        return entry[1]

    def partner_view(self, slot: int, shard: int) -> np.ndarray:
        entry = self._partners.get((slot, shard))
        if entry is None:
            shm = attach_segment(self.names[slot][shard])
            arr = np.ndarray((self.local_dim, self.batch), dtype=np.complex128, buffer=shm.buf)
            entry = (shm, arr)
            self._partners[(slot, shard)] = entry
        return entry[1]

    # -- labels / diagonals ----------------------------------------------
    def _global_labels(self, lo: int, hi: int) -> np.ndarray:
        if self.cfg.k is None:
            return np.arange(self.cfg.chunk.start + lo, self.cfg.chunk.start + hi, dtype=np.int64)
        return self.local_labels[lo:hi]

    def _row_chunk(self) -> int:
        return max(1024, (1 << 20) // max(1, self.batch))

    def _term_signs(self, labels_u: np.ndarray, mask: int) -> np.ndarray:
        return 1.0 - 2.0 * (popcount(labels_u & np.uint64(mask)) & 1)

    def _combined_diag(self, lo: int, hi: int, masks, coeffs) -> np.ndarray:
        labels_u = np.arange(
            self.cfg.chunk.start + lo, self.cfg.chunk.start + hi, dtype=np.uint64
        )
        diag = np.zeros(hi - lo, dtype=np.float64)
        for mask, coeff in zip(masks, coeffs):
            diag += coeff * self._term_signs(labels_u, mask)
        return diag

    def _term_matrix(self, lo: int, hi: int, masks, coeffs) -> np.ndarray:
        labels_u = np.arange(
            self.cfg.chunk.start + lo, self.cfg.chunk.start + hi, dtype=np.uint64
        )
        out = np.empty((hi - lo, len(masks)), dtype=np.float64)
        for t, (mask, coeff) in enumerate(zip(masks, coeffs)):
            out[:, t] = coeff * self._term_signs(labels_u, mask)
        return out

    # -- operations ------------------------------------------------------
    def setup(self, names: list[list[str]], batch: int) -> tuple[float, float]:
        self.remap(names, batch)
        if self.cfg.k is not None:
            self.local_labels = chunk_labels(self.cfg.chunk, self.cfg.n, self.cfg.k)
        values = np.empty(self.local_dim, dtype=np.float64)
        step = self.cfg.value_chunk
        for lo in range(0, self.local_dim, step):
            hi = min(lo + step, self.local_dim)
            bits = ints_to_bit_matrix(self._global_labels(lo, hi), self.cfg.n)
            values[lo:hi] = self.cfg.cost_vectorized(bits)
        self.values = values
        return float(values.min()), float(values.max())

    def load_uniform(self, slot: int, amplitude: complex) -> None:
        self.view(slot)[:] = amplitude

    def cost_phase(self, slot: int, gammas: np.ndarray, sign: float) -> None:
        view = self.view(slot)
        factor = sign * 1j
        step = self._row_chunk()
        for lo in range(0, self.local_dim, step):
            hi = min(lo + step, self.local_dim)
            view[lo:hi] *= np.exp(
                np.multiply.outer(self.values[lo:hi], factor * gammas)
            )

    def diag_phase(self, slot: int, masks, coeffs, betas: np.ndarray, sign: float,
                   scale: float) -> None:
        view = self.view(slot)
        factor = sign * 1j
        step = self._row_chunk()
        combine = betas.shape[0] == 1
        for lo in range(0, self.local_dim, step):
            hi = min(lo + step, self.local_dim)
            if combine:
                d = self._combined_diag(lo, hi, masks, coeffs)
                exponent = np.multiply.outer(d, factor * betas[0])
            else:
                E = self._term_matrix(lo, hi, masks, coeffs)
                exponent = E @ (factor * betas)
            phases = np.exp(exponent)
            if scale != 1.0:
                phases *= scale
            view[lo:hi] *= phases

    def wht_local(self, slot: int) -> None:
        _local_wht(self.view(slot))

    def butterfly(self, level: int, src_slot: int, dst_slot: int) -> None:
        bit = 1 << level
        partner = self.cfg.index ^ bit
        own_src = self.view(src_slot)
        partner_src = self.partner_view(src_slot, partner)
        own_dst = self.view(dst_slot)
        if self.cfg.index & bit:
            np.subtract(partner_src, own_src, out=own_dst)
        else:
            np.add(own_src, partner_src, out=own_dst)

    def colsum(self, slot: int) -> np.ndarray:
        return self.view(slot).sum(axis=0)

    def grover_update(self, slot: int, factors: np.ndarray) -> None:
        self.view(slot)[:] += factors[None, :]

    def mul_values(self, slot: int) -> None:
        self.view(slot)[:] *= self.values[:, None]

    def expectation_part(self, slot: int) -> np.ndarray:
        view = self.view(slot)
        acc = np.zeros(self.batch, dtype=np.float64)
        step = self._row_chunk()
        for lo in range(0, self.local_dim, step):
            hi = min(lo + step, self.local_dim)
            block = view[lo:hi]
            p2 = block.real ** 2 + block.imag ** 2
            acc += self.values[lo:hi] @ p2
        return acc

    def norm_part(self, slot: int) -> np.ndarray:
        view = self.view(slot)
        acc = np.zeros(self.batch, dtype=np.float64)
        step = self._row_chunk()
        for lo in range(0, self.local_dim, step):
            hi = min(lo + step, self.local_dim)
            block = view[lo:hi]
            acc += (block.real ** 2 + block.imag ** 2).sum(axis=0)
        return acc

    def gsp_part(self, slot: int, optimum: float) -> np.ndarray:
        view = self.view(slot)
        acc = np.zeros(self.batch, dtype=np.float64)
        step = self._row_chunk()
        for lo in range(0, self.local_dim, step):
            hi = min(lo + step, self.local_dim)
            mask = np.isclose(self.values[lo:hi], optimum, rtol=_OPT_RTOL, atol=_OPT_ATOL)
            if mask.any():
                block = view[lo:hi][mask]
                acc += (block.real ** 2 + block.imag ** 2).sum(axis=0)
        return acc

    # -- adjoint-gradient helpers ---------------------------------------
    def _ensure_layers(self, p: int) -> np.ndarray:
        if self.layers is None or self.layers.shape[0] != p:
            self.layers = np.empty((p, 2, self.local_dim, self.batch), dtype=np.complex128)
        return self.layers

    def store_layer(self, k: int, j: int, slot: int, p: int) -> None:
        self._ensure_layers(p)[k, j] = self.view(slot)

    def load_layer(self, k: int, j: int, slot: int) -> None:
        self.view(slot)[:] = self.layers[k, j]

    def layer_colsum(self, k: int, j: int) -> np.ndarray:
        return self.layers[k, j].sum(axis=0)

    def gamma_grad_part(self, phi_slot: int, k: int) -> np.ndarray:
        phi = self.view(phi_slot)
        chi = self.layers[k, 0]
        acc = np.zeros(self.batch, dtype=np.float64)
        step = self._row_chunk()
        for lo in range(0, self.local_dim, step):
            hi = min(lo + step, self.local_dim)
            pb, cb = phi[lo:hi], chi[lo:hi]
            imag = pb.real * cb.imag - pb.imag * cb.real
            acc += self.values[lo:hi] @ imag
        return acc

    def xgrad_part(self, phi_slot: int, psi_slot: int, masks, coeffs,
                   combine: bool) -> np.ndarray:
        phi = self.view(phi_slot)
        psi = self.view(psi_slot)
        T = 1 if combine else len(masks)
        acc = np.zeros((T, self.batch), dtype=np.float64)
        step = self._row_chunk()
        for lo in range(0, self.local_dim, step):
            hi = min(lo + step, self.local_dim)
            pb, sb = phi[lo:hi], psi[lo:hi]
            imag = pb.real * sb.imag - pb.imag * sb.real
            if combine:
                acc[0] += self._combined_diag(lo, hi, masks, coeffs) @ imag
            else:
                acc += self._term_matrix(lo, hi, masks, coeffs).T @ imag
        return acc

    # -- sampling / gather / io ------------------------------------------
    def sample_local(self, slot: int, col: int, count: int, seed: int) -> np.ndarray:
        probs = np.abs(self.view(slot)[:, col]) ** 2
        cdf = np.cumsum(probs)
        rng = np.random.default_rng(seed)
        draws = rng.random(count) * cdf[-1]
        indices = np.searchsorted(cdf, draws, side="right")
        np.clip(indices, 0, self.local_dim - 1, out=indices)
        if self.cfg.k is None:
            return (self.cfg.chunk.start + indices).astype(np.int64)
        return self.local_labels[indices]

    def gather(self, slot: int, col: int) -> np.ndarray:
        return self.view(slot)[:, col].copy()

    def checkpoint(self, slot: int, directory: str) -> None:
        np.save(Path(directory) / f"shard-{self.cfg.index}.npy", self.view(slot))

    def restore(self, slot: int, directory: str) -> None:
        block = np.load(Path(directory) / f"shard-{self.cfg.index}.npy")
        if block.shape != (self.local_dim, self.batch):
            raise ValueError(
                f"checkpoint shard {self.cfg.index} has shape {block.shape}, "
                f"expected {(self.local_dim, self.batch)}"
            )
        self.view(slot)[:] = block

    def rss(self) -> tuple[int, int]:
        current = peak = 0
        try:
            with open("/proc/self/status", "r", encoding="ascii") as handle:
                for line in handle:
                    if line.startswith("VmRSS:"):
                        current = int(line.split()[1]) * 1024
                    elif line.startswith("VmHWM:"):
                        peak = int(line.split()[1]) * 1024
        except OSError:  # pragma: no cover - /proc-less platforms
            pass
        return current, peak

    # -- dispatch --------------------------------------------------------
    def dispatch(self, op: str, args: tuple):
        handler = getattr(self, op)
        return handler(*args)


def _worker_main(cfg: _WorkerConfig, conn) -> None:
    state = _WorkerState(cfg)
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            op = message[0]
            if op == "exit":
                conn.send(("ok", None))
                break
            try:
                result = state.dispatch(op, message[1:])
            except BaseException:
                conn.send(("err", traceback.format_exc()))
                continue
            conn.send(("ok", result))
    finally:
        state._close_handles()
        conn.close()


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------

class ShardedExecutor:
    """Drives one sharded QAOA evolution across pinned worker processes.

    Parameters
    ----------
    structure:
        A :class:`~repro.problems.registry.ProblemStructure` (space-free).
    mixer:
        A :class:`ShardedMixerConfig` (see :func:`sharded_mixer_config`).
    p:
        Number of QAOA rounds.
    shards:
        Worker count.  WHT mixers require a power of two that divides the
        (full-space) dimension; the Grover mixer accepts any count >= 2.
    batch:
        Initial number of statevector columns.
    """

    def __init__(self, structure, mixer: ShardedMixerConfig, p: int,
                 shards: int, *, batch: int = 1):
        if p < 1:
            raise ValueError("a QAOA needs at least one round")
        if shards < 2:
            raise ValueError("sharded execution needs at least 2 shards")
        self.structure = structure
        self.mixer = mixer
        self.p = int(p)
        self.n = int(structure.n)
        self.k = structure.k
        self.dim = int(structure.dim)
        self.maximize = bool(structure.maximize)
        if shards > self.dim:
            raise ValueError(f"cannot split dim {self.dim} into {shards} shards")

        if mixer.needs_wht:
            if self.k is not None:
                raise ValueError(
                    f"mixer kind {mixer.kind!r} acts on the full space; Dicke "
                    "subspaces shard with the Grover mixer only"
                )
            if shards & (shards - 1):
                raise ValueError(
                    f"WHT mixers need a power-of-two shard count, got {shards}"
                )
            chunks = split_full_space(self.n, shards)
        elif self.k is None:
            chunks = split_full_space(self.n, shards)
        else:
            chunks = split_dicke_space(self.n, self.k, shards)
        self.chunks = chunks
        self.shards = len(chunks)
        self._s = self.shards.bit_length() - 1  # butterfly levels (WHT kinds)
        self._sqrt_dim = float(np.sqrt(float(self.dim)))

        self.workspace = ShardedWorkspace([c.size for c in chunks], batch, slots=2)
        ctx = mp.get_context("fork")
        self._procs = []
        self._conns = []
        for chunk in chunks:
            parent, child = ctx.Pipe()
            cfg = _WorkerConfig(
                index=chunk.index,
                chunk=chunk,
                n=self.n,
                k=self.k,
                shards=self.shards,
                cost_vectorized=structure.cost_vectorized,
            )
            proc = ctx.Process(target=_worker_main, args=(cfg, child), daemon=True)
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)
        self._closed = False
        try:
            extrema = self._command("setup", self.workspace.segment_names(),
                                    self.workspace.batch)
        except Exception:
            self.close()
            raise
        self.value_min = min(e[0] for e in extrema)
        self.value_max = max(e[1] for e in extrema)
        self._sim_slot: int | None = None

    # ------------------------------------------------------------------
    @property
    def optimum(self) -> float:
        """Best objective value over the feasible space (by sense)."""
        return self.value_max if self.maximize else self.value_min

    @property
    def num_angles(self) -> int:
        """Flat angle vector length (betas then gammas)."""
        return self.mixer.betas_per_round * self.p + self.p

    # -- command plumbing ------------------------------------------------
    def _command(self, op: str, *payload):
        if self._closed:
            raise RuntimeError("executor is closed")
        message = (op,) + payload
        for conn in self._conns:
            conn.send(message)
        results = []
        errors = []
        for index, conn in enumerate(self._conns):
            try:
                status, value = conn.recv()
            except EOFError:
                errors.append(f"shard {index}: worker died")
                continue
            if status == "ok":
                results.append(value)
            else:
                errors.append(f"shard {index}:\n{value}")
        if errors:
            raise ShardedExecutionError(
                f"sharded op {op!r} failed on {len(errors)} shard(s):\n"
                + "\n".join(errors)
            )
        return results

    def _sync(self) -> None:
        self._command("remap", self.workspace.segment_names(), self.workspace.batch)

    def ensure_batch(self, batch: int) -> None:
        """Re-shape the shared buffers to ``batch`` columns (no-op if equal)."""
        if self.workspace.ensure(batch):
            self._sim_slot = None
            self._sync()

    def _ensure_slots(self, count: int) -> None:
        if self.workspace.ensure_slots(count):
            self._sync()

    # -- angle layout ----------------------------------------------------
    def _split_batch(self, angles: np.ndarray) -> tuple[list[np.ndarray], np.ndarray, int]:
        angles = np.asarray(angles, dtype=np.float64)
        if angles.ndim == 1:
            angles = angles[None, :]
        if angles.ndim != 2 or angles.shape[1] != self.num_angles:
            raise ValueError(
                f"expected an (M, {self.num_angles}) angle matrix "
                f"({self.mixer.betas_per_round * self.p} betas + {self.p} gammas "
                f"per row), got shape {angles.shape}"
            )
        transposed = np.ascontiguousarray(angles.T)
        B = self.mixer.betas_per_round
        beta_rounds = [transposed[k * B:(k + 1) * B] for k in range(self.p)]
        gammas = transposed[B * self.p:]
        return beta_rounds, gammas, angles.shape[0]

    # -- evolution -------------------------------------------------------
    def _transform(self, slot: int, scratch: int) -> int:
        """Full-WHT one statevector batch: local butterfly + s exchange levels.

        The local transform (low bits) and the cross-shard levels (high bits)
        act on disjoint index bits, so their order is immaterial; the state
        ends in whichever of ``slot``/``scratch`` the level parity lands on.
        """
        self._command("wht_local", slot)
        cur, other = slot, scratch
        for level in range(self._s):
            self._command("butterfly", level, cur, other)
            cur, other = other, cur
        return cur

    def _apply_mixer(self, slot: int, betas_k: np.ndarray, sign: float) -> int:
        """One mixer layer with per-column angles; returns the new state slot."""
        if self.mixer.kind == "grover":
            S = np.sum(self._command("colsum", slot), axis=0)
            factors = (np.exp(sign * 1j * betas_k[0]) - 1.0) * S / float(self.dim)
            self._command("grover_update", slot, factors)
            return slot
        scratch = 1 - slot if slot in (0, 1) else 0
        t = self._transform(slot, scratch)
        self._command(
            "diag_phase", t, self.mixer.masks, self.mixer.coeffs,
            betas_k, sign, 2.0 ** -self._s,
        )
        t_scratch = next(s for s in (0, 1, 2) if s != t and s < self.workspace.num_slots)
        return self._transform(t, t_scratch)

    def _forward(self, beta_rounds, gammas, M: int, *, store_layers: bool = False) -> int:
        self.ensure_batch(M)
        cur = 0
        self._command("load_uniform", cur, complex(1.0 / self._sqrt_dim))
        for k in range(self.p):
            self._command("cost_phase", cur, gammas[k], -1.0)
            if store_layers:
                self._command("store_layer", k, 0, cur, self.p)
            cur = self._apply_mixer(cur, beta_rounds[k], -1.0)
            if store_layers:
                self._command("store_layer", k, 1, cur, self.p)
        return cur

    def expectation_batch(self, angles: np.ndarray) -> np.ndarray:
        """``<C>`` for every row of an ``(M, num_angles)`` angle matrix."""
        beta_rounds, gammas, M = self._split_batch(angles)
        cur = self._forward(beta_rounds, gammas, M)
        self._sim_slot = cur
        return np.sum(self._command("expectation_part", cur), axis=0)

    def value_and_gradient_batch(self, angles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched expectation values and exact adjoint gradients.

        One sharded forward pass with per-round layer recording, then the
        fused transform-domain adjoint recursion described in the module
        docstring.  Shapes ``(M,)`` and ``(M, num_angles)``.
        """
        beta_rounds, gammas, M = self._split_batch(angles)
        if self.mixer.needs_wht:
            self._ensure_slots(3)
        cur = self._forward(beta_rounds, gammas, M, store_layers=True)
        energies = np.sum(self._command("expectation_part", cur), axis=0)

        self._command("mul_values", cur)  # phi = C psi
        scale = 2.0 ** -self._s
        grad_beta_blocks: list[np.ndarray] = [None] * self.p  # type: ignore[list-item]
        grad_gammas = np.empty((self.p, M), dtype=np.float64)
        for k in range(self.p - 1, -1, -1):
            betas_k = beta_rounds[k]
            if self.mixer.kind == "grover":
                S_phi = np.sum(self._command("colsum", cur), axis=0)
                S_psi = np.sum(self._command("layer_colsum", k, 1), axis=0)
                grad_beta_blocks[k] = (
                    2.0 * np.imag(np.conj(S_phi) * S_psi) / float(self.dim)
                )[None, :]
                factors = (np.exp(1j * betas_k[0]) - 1.0) * S_phi / float(self.dim)
                self._command("grover_update", cur, factors)
            else:
                scratch = next(s for s in (0, 1, 2) if s != cur)
                phi_t = self._transform(cur, scratch)
                rem = [s for s in (0, 1, 2) if s != phi_t]
                self._command("load_layer", k, 1, rem[0])
                psi_t = self._transform(rem[0], rem[1])
                partials = self._command(
                    "xgrad_part", phi_t, psi_t, self.mixer.masks, self.mixer.coeffs,
                    self.mixer.kind == "x",
                )
                grad_beta_blocks[k] = 2.0 * scale * np.sum(partials, axis=0)
                self._command(
                    "diag_phase", phi_t, self.mixer.masks, self.mixer.coeffs,
                    betas_k, +1.0, scale,
                )
                t_scratch = next(s for s in (0, 1, 2) if s != phi_t)
                cur = self._transform(phi_t, t_scratch)
            grad_gammas[k] = 2.0 * np.sum(self._command("gamma_grad_part", cur, k), axis=0)
            if k:
                self._command("cost_phase", cur, gammas[k], +1.0)

        gradient = np.empty((M, self.num_angles), dtype=np.float64)
        cursor = 0
        for block in grad_beta_blocks:
            gradient[:, cursor:cursor + block.shape[0]] = block.T
            cursor += block.shape[0]
        gradient[:, cursor:] = grad_gammas.T
        self._sim_slot = None  # the state buffers hold phi, not psi
        return energies, gradient

    # -- result extraction ----------------------------------------------
    def simulate(self, angles: np.ndarray) -> dict:
        """Evolve one angle set and reduce the result scalars.

        Returns ``{"expectation", "ground_state_probability", "norm"}``; the
        final state stays resident in the shard buffers for
        :meth:`sample` / :meth:`gather_state` / :meth:`checkpoint` until the
        next evolution overwrites it.
        """
        angles = np.asarray(angles, dtype=np.float64).ravel()
        beta_rounds, gammas, _ = self._split_batch(angles[None, :])
        cur = self._forward(beta_rounds, gammas, 1)
        self._sim_slot = cur
        expectation = float(np.sum(self._command("expectation_part", cur), axis=0)[0])
        gsp = float(np.sum(self._command("gsp_part", cur, self.optimum), axis=0)[0])
        norm = float(np.sqrt(np.sum(self._command("norm_part", cur), axis=0)[0]))
        return {
            "expectation": expectation,
            "ground_state_probability": gsp,
            "norm": norm,
        }

    def _require_state(self) -> int:
        if self._sim_slot is None:
            raise RuntimeError(
                "no resident final state (run simulate()/expectation_batch() "
                "first; gradient passes consume the state buffers)"
            )
        return self._sim_slot

    def sample(self, shots: int, rng: np.random.Generator | int | None = None,
               *, col: int = 0) -> np.ndarray:
        """Draw measurement outcomes (full-space labels) from the resident state.

        Two-stage exact sampling: shard totals give a multinomial split of
        the shots, then each worker samples its local distribution.
        """
        if shots < 1:
            raise ValueError("shots must be positive")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        slot = self._require_state()
        totals = np.array([part[col] for part in self._command("norm_part", slot)])
        counts = rng.multinomial(shots, totals / totals.sum())
        labels = []
        for index, count in enumerate(counts):
            if count == 0:
                continue
            seed = int(rng.integers(0, 2 ** 63 - 1))
            conn = self._conns[index]
            conn.send(("sample_local", slot, col, int(count), seed))
            status, value = conn.recv()
            if status != "ok":
                raise ShardedExecutionError(f"shard {index}:\n{value}")
            labels.append(value)
        out = np.concatenate(labels) if labels else np.zeros(0, dtype=np.int64)
        return out[rng.permutation(out.size)]

    def gather_state(self, *, col: int = 0) -> np.ndarray:
        """Concatenate the resident final state (small dims only; tests)."""
        if self.dim > GATHER_LIMIT:
            raise ValueError(
                f"refusing to gather a dim-{self.dim} statevector into the "
                f"coordinator (limit {GATHER_LIMIT})"
            )
        slot = self._require_state()
        return np.concatenate(self._command("gather", slot, col))

    # -- checkpointing ----------------------------------------------------
    def checkpoint(self, directory: str | os.PathLike) -> None:
        """Persist the resident state: one ``.npy`` per shard plus a manifest.

        The manifest write and the shard dumps run under the run-store
        :class:`~repro.io.locking.FileLock`, so concurrent executors sharing
        a checkpoint directory serialize cleanly.
        """
        slot = self._require_state()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with FileLock(directory / ".lock"):
            self._command("checkpoint", slot, str(directory))
            manifest = {
                "n": self.n,
                "k": self.k,
                "dim": self.dim,
                "shards": self.shards,
                "batch": self.workspace.batch,
                "chunks": [[c.start, c.stop] for c in self.chunks],
            }
            (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))

    def restore(self, directory: str | os.PathLike) -> None:
        """Load a checkpoint written by a same-shaped executor."""
        directory = Path(directory)
        with FileLock(directory / ".lock"):
            manifest = json.loads((directory / "manifest.json").read_text())
            if (manifest["n"], manifest["k"], manifest["shards"]) != (self.n, self.k, self.shards):
                raise ValueError(
                    f"checkpoint shape (n={manifest['n']}, k={manifest['k']}, "
                    f"shards={manifest['shards']}) does not match executor "
                    f"(n={self.n}, k={self.k}, shards={self.shards})"
                )
            self.ensure_batch(int(manifest["batch"]))
            self._command("restore", 0, str(directory))
        self._sim_slot = 0

    # -- introspection / lifecycle ----------------------------------------
    def rss(self) -> dict:
        """Current and peak RSS of the coordinator and every worker."""
        worker = self._command("rss")
        own = _WorkerState.rss(self)  # reads /proc/self, needs no state
        return {
            "coordinator": {"rss": own[0], "peak": own[1]},
            "workers": [{"rss": r, "peak": p} for r, p in worker],
            "max_peak": max([own[1]] + [p for _, p in worker]),
            "total_peak": own[1] + sum(p for _, p in worker),
        }

    def close(self) -> None:
        """Shut workers down and unlink every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - stuck worker safety net
                proc.terminate()
                proc.join(timeout=5.0)
        self.workspace.close()

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedExecutor(n={self.n}, k={self.k}, dim={self.dim}, "
            f"shards={self.shards}, mixer={self.mixer.kind!r}, p={self.p})"
        )
