"""Compressed-state simulation of Grover-mixer QAOA.

With the Grover mixer ``H_G = |psi0><psi0|`` (``|psi0>`` the uniform
superposition over the feasible space), the amplitude of a basis state depends
only on its objective value at every point of the evolution.  The state can
therefore be stored as one complex amplitude per *distinct* objective value:

* phase separator:   ``a_v <- exp(-i gamma v) a_v``                       (element-wise)
* Grover mixer:      ``a_v <- a_v + (e^{-i beta} - 1) * s / sqrt(N)``     with
  ``s = <psi0|psi> = sum_v d_v a_v / sqrt(N)``

where ``d_v`` are the degeneracies and ``N`` the number of feasible states.
Expectation values and optimal-state probabilities likewise reduce to sums
over the distinct values.  Memory and time per round are ``O(#distinct
values)`` — this is the paper's route to ``n ≈ 100`` (Sec. 2.4).

The module also provides the adjoint-mode gradient in the compressed
representation, so large-``n`` Grover-QAOA angle finding works exactly like
the dense path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .compress import CompressedObjective

__all__ = [
    "CompressedGroverResult",
    "simulate_grover_compressed",
    "grover_expectation",
    "grover_value_and_gradient",
    "amplitudes_by_value",
]


@dataclass
class CompressedGroverResult:
    """Result of a compressed Grover-QAOA simulation.

    ``class_amplitudes[j]`` is the (shared) amplitude of every basis state
    whose objective value is ``spectrum.values[j]``.
    """

    class_amplitudes: np.ndarray
    spectrum: CompressedObjective
    angles: np.ndarray
    _cache: dict = field(default_factory=dict, repr=False)

    def class_probabilities(self) -> np.ndarray:
        """Total probability of each objective-value class (sums to 1)."""
        if "class_probs" not in self._cache:
            degs = self.spectrum.degeneracy_array()
            self._cache["class_probs"] = degs * np.abs(self.class_amplitudes) ** 2
        return self._cache["class_probs"]

    def expectation(self) -> float:
        """``<C>`` over the feasible space."""
        return float(np.dot(self.class_probabilities(), self.spectrum.values))

    def ground_state_probability(self) -> float:
        """Probability of measuring any optimal (maximum objective value) state."""
        return float(self.class_probabilities()[-1])

    def probability_of_value(self, value: float) -> float:
        """Probability of measuring a state whose objective equals ``value``."""
        idx = np.flatnonzero(np.isclose(self.spectrum.values, value))
        if idx.size == 0:
            raise KeyError(f"objective value {value} is not in the spectrum")
        return float(self.class_probabilities()[idx].sum())

    def norm(self) -> float:
        """Statevector norm (should be 1 up to round-off)."""
        return float(np.sqrt(self.class_probabilities().sum()))

    def is_fair(self, atol: float = 1e-12) -> bool:
        """Grover-QAOA fair sampling always holds in this representation (trivially true)."""
        return True


def _initial_class_amplitudes(spectrum: CompressedObjective) -> np.ndarray:
    # Uniform superposition: every basis state has amplitude 1/sqrt(N).
    return np.full(spectrum.num_distinct, 1.0 / np.sqrt(float(spectrum.total)), dtype=np.complex128)


def _evolve(
    betas: np.ndarray,
    gammas: np.ndarray,
    spectrum: CompressedObjective,
    *,
    store_layers: bool = False,
) -> tuple[np.ndarray, np.ndarray | None]:
    degs = spectrum.degeneracy_array()
    sqrt_total = np.sqrt(float(spectrum.total))
    amplitudes = _initial_class_amplitudes(spectrum)
    layers = (
        np.empty((len(gammas), 2, spectrum.num_distinct), dtype=np.complex128)
        if store_layers
        else None
    )
    for k, (beta, gamma) in enumerate(zip(betas, gammas)):
        amplitudes = amplitudes * np.exp(-1j * gamma * spectrum.values)
        if layers is not None:
            layers[k, 0, :] = amplitudes
        overlap = np.dot(degs, amplitudes) / sqrt_total
        amplitudes = amplitudes + (np.exp(-1j * beta) - 1.0) * overlap / sqrt_total
        if layers is not None:
            layers[k, 1, :] = amplitudes
    return amplitudes, layers


def simulate_grover_compressed(
    angles: np.ndarray, spectrum: CompressedObjective
) -> CompressedGroverResult:
    """Simulate a Grover-mixer QAOA in the compressed representation.

    ``angles`` uses the same flat layout as the dense simulator: ``p`` betas
    followed by ``p`` gammas.
    """
    angles = np.asarray(angles, dtype=np.float64).ravel()
    if angles.size % 2:
        raise ValueError("the compressed Grover path expects 2p angles (betas then gammas)")
    p = angles.size // 2
    betas, gammas = angles[:p], angles[p:]
    amplitudes, _ = _evolve(betas, gammas, spectrum)
    return CompressedGroverResult(
        class_amplitudes=amplitudes, spectrum=spectrum, angles=angles.copy()
    )


def grover_expectation(angles: np.ndarray, spectrum: CompressedObjective) -> float:
    """Expectation value of a compressed Grover-QAOA (fast path for optimizers)."""
    return simulate_grover_compressed(angles, spectrum).expectation()


def grover_value_and_gradient(
    angles: np.ndarray, spectrum: CompressedObjective
) -> tuple[float, np.ndarray]:
    """Expectation value and exact adjoint-mode gradient in the compressed representation.

    The derivation is identical to :mod:`repro.core.gradients` with the dense
    inner products replaced by degeneracy-weighted sums; the cost is
    ``O(p * #distinct values)``.
    """
    angles = np.asarray(angles, dtype=np.float64).ravel()
    if angles.size % 2:
        raise ValueError("expected 2p angles (betas then gammas)")
    p = angles.size // 2
    betas, gammas = angles[:p], angles[p:]

    degs = spectrum.degeneracy_array()
    values = spectrum.values
    sqrt_total = np.sqrt(float(spectrum.total))
    psi0 = np.full(spectrum.num_distinct, 1.0 / sqrt_total, dtype=np.complex128)

    final, layers = _evolve(betas, gammas, spectrum, store_layers=True)
    energy = float(np.dot(degs, values * np.abs(final) ** 2))

    def weighted_vdot(a: np.ndarray, b: np.ndarray) -> complex:
        # <a|b> over the full space = sum_v d_v conj(a_v) b_v
        return complex(np.dot(degs, np.conj(a) * b))

    def apply_grover(a: np.ndarray, beta: float) -> np.ndarray:
        overlap = weighted_vdot(psi0, a)
        return a + (np.exp(-1j * beta) - 1.0) * overlap * psi0

    def apply_hamiltonian(a: np.ndarray) -> np.ndarray:
        overlap = weighted_vdot(psi0, a)
        return overlap * psi0

    phi = values * final
    grad_betas = np.empty(p, dtype=np.float64)
    grad_gammas = np.empty(p, dtype=np.float64)
    for k in range(p - 1, -1, -1):
        psi_k = layers[k, 1, :]
        chi_k = layers[k, 0, :]
        grad_betas[k] = 2.0 * float(np.imag(weighted_vdot(phi, apply_hamiltonian(psi_k))))
        phi = apply_grover(phi, -betas[k])
        grad_gammas[k] = 2.0 * float(np.imag(weighted_vdot(phi, values * chi_k)))
        phi = phi * np.exp(1j * gammas[k] * values)

    return energy, np.concatenate([grad_betas, grad_gammas])


def amplitudes_by_value(result: CompressedGroverResult) -> dict[float, complex]:
    """Mapping from objective value to the shared per-state amplitude."""
    return {
        float(v): complex(a)
        for v, a in zip(result.spectrum.values, result.class_amplitudes)
    }
