"""Compressed objective representations for Grover-mixer QAOA.

Sec. 2.4 of the paper: with the Grover mixer all states sharing an objective
value keep identical amplitudes throughout the evolution ("fair sampling"), so
the simulation only needs the *distinct* objective values and how many states
take each value (the degeneracies), not the full ``2^n`` value vector.  That
compressed spectrum is what enables Grover-QAOA simulation up to ``n ≈ 100``.

Three ways of obtaining the compressed spectrum are provided:

* :func:`compress_objective` — from an explicit value vector (small ``n``),
* :func:`compress_streaming` — by streaming over the feasible space in chunks
  without ever materializing the full vector (this is the path that
  parallelizes across workers; see :mod:`repro.grover.parallel`),
* analytic constructors for structured objectives
  (:func:`hamming_weight_spectrum`, :func:`binomial_spectrum`) where the
  degeneracies follow from counting arguments and arbitrary ``n`` is possible.

Degeneracies are kept as Python integers (exact even beyond 2^53) and
converted to floats only where they enter amplitude arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Callable, Iterable, Sequence

import numpy as np

from ..hilbert.bitops import gosper_iter, ints_to_bit_matrix

__all__ = [
    "CompressedObjective",
    "compress_objective",
    "compress_streaming",
    "compress_streaming_dicke",
    "hamming_weight_spectrum",
    "binomial_spectrum",
]


@dataclass(frozen=True)
class CompressedObjective:
    """Distinct objective values with exact degeneracy counts.

    Attributes
    ----------
    values:
        Sorted (ascending) distinct objective values.
    degeneracies:
        Number of feasible states attaining each value (exact Python ints).
    total:
        Total number of feasible states (sum of degeneracies), kept separately
        because it can exceed 2^53.
    """

    values: np.ndarray
    degeneracies: tuple[int, ...]
    total: int

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("compressed spectrum must contain at least one value")
        if np.any(np.diff(values) <= 0):
            raise ValueError("distinct values must be strictly increasing")
        degeneracies = tuple(int(d) for d in self.degeneracies)
        if len(degeneracies) != values.size:
            raise ValueError("values and degeneracies must have the same length")
        if any(d <= 0 for d in degeneracies):
            raise ValueError("degeneracies must be positive")
        total = sum(degeneracies)
        if total != self.total:
            raise ValueError(f"total={self.total} does not match the sum of degeneracies ({total})")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "degeneracies", degeneracies)

    # ------------------------------------------------------------------
    @property
    def num_distinct(self) -> int:
        """Number of distinct objective values."""
        return int(self.values.size)

    @property
    def optimum(self) -> float:
        """Largest objective value (maximization convention)."""
        return float(self.values[-1])

    @property
    def optimum_degeneracy(self) -> int:
        """Number of optimal states."""
        return self.degeneracies[-1]

    def degeneracy_array(self) -> np.ndarray:
        """Degeneracies as a float array (loses exactness above 2^53; used in arithmetic)."""
        return np.array([float(d) for d in self.degeneracies], dtype=np.float64)

    def mean(self) -> float:
        """Mean objective value over the feasible space."""
        degs = self.degeneracy_array()
        return float(np.dot(self.values, degs) / float(self.total))

    def merge(self, other: "CompressedObjective") -> "CompressedObjective":
        """Combine two partial spectra (e.g. from different workers)."""
        combined: dict[float, int] = {}
        for value, deg in zip(self.values, self.degeneracies):
            combined[float(value)] = combined.get(float(value), 0) + deg
        for value, deg in zip(other.values, other.degeneracies):
            combined[float(value)] = combined.get(float(value), 0) + deg
        values = np.array(sorted(combined), dtype=np.float64)
        degs = tuple(combined[float(v)] for v in values)
        return CompressedObjective(values=values, degeneracies=degs, total=self.total + other.total)

    def expand(self) -> np.ndarray:
        """The full (sorted) objective vector — only sensible for small totals."""
        if self.total > 1 << 22:
            raise ValueError("refusing to expand a spectrum with more than 2^22 states")
        return np.repeat(self.values, [int(d) for d in self.degeneracies])


def compress_objective(
    obj_vals: np.ndarray | Sequence[float], decimals: int | None = None
) -> CompressedObjective:
    """Compress an explicit objective vector into distinct values + degeneracies.

    ``decimals`` optionally rounds values before grouping, which is useful for
    continuous objectives where floating-point noise would otherwise split
    classes.
    """
    vals = np.asarray(obj_vals, dtype=np.float64).ravel()
    if vals.size == 0:
        raise ValueError("objective values must be non-empty")
    if decimals is not None:
        vals = np.round(vals, decimals)
    distinct, counts = np.unique(vals, return_counts=True)
    return CompressedObjective(
        values=distinct,
        degeneracies=tuple(int(c) for c in counts),
        total=int(vals.size),
    )


def compress_streaming(
    cost_vectorized: Callable[[np.ndarray], np.ndarray],
    n: int,
    *,
    start: int = 0,
    stop: int | None = None,
    chunk_size: int = 1 << 14,
    decimals: int | None = None,
) -> CompressedObjective:
    """Compress the objective over labels ``[start, stop)`` without storing all values.

    The label range is processed in chunks; each chunk is converted to a bit
    matrix, evaluated with ``cost_vectorized`` and folded into a running
    value → count dictionary.  Partitioning ``[0, 2^n)`` across workers and
    merging the partial spectra reproduces the paper's multi-worker degeneracy
    counting for unconstrained problems.
    """
    if stop is None:
        stop = 1 << n
    if not 0 <= start <= stop <= (1 << n):
        raise ValueError(f"invalid label range [{start}, {stop}) for n={n}")
    if chunk_size < 1:
        raise ValueError("chunk size must be positive")
    counts: dict[float, int] = {}
    position = start
    while position < stop:
        block = np.arange(position, min(position + chunk_size, stop), dtype=np.int64)
        bits = ints_to_bit_matrix(block, n)
        vals = np.asarray(cost_vectorized(bits), dtype=np.float64)
        if decimals is not None:
            vals = np.round(vals, decimals)
        distinct, block_counts = np.unique(vals, return_counts=True)
        for value, count in zip(distinct, block_counts):
            counts[float(value)] = counts.get(float(value), 0) + int(count)
        position += chunk_size
    values = np.array(sorted(counts), dtype=np.float64)
    degs = tuple(counts[float(v)] for v in values)
    return CompressedObjective(values=values, degeneracies=degs, total=stop - start)


def compress_streaming_dicke(
    cost_vectorized: Callable[[np.ndarray], np.ndarray],
    n: int,
    k: int,
    *,
    chunk_size: int = 1 << 14,
    decimals: int | None = None,
) -> CompressedObjective:
    """Compress the objective over all Hamming-weight-``k`` states via Gosper iteration."""
    counts: dict[float, int] = {}
    buffer: list[int] = []
    total = 0

    def flush() -> None:
        nonlocal total
        if not buffer:
            return
        bits = ints_to_bit_matrix(np.array(buffer, dtype=np.int64), n)
        vals = np.asarray(cost_vectorized(bits), dtype=np.float64)
        if decimals is not None:
            vals = np.round(vals, decimals)
        distinct, block_counts = np.unique(vals, return_counts=True)
        for value, count in zip(distinct, block_counts):
            counts[float(value)] = counts.get(float(value), 0) + int(count)
        total += len(buffer)
        buffer.clear()

    for label in gosper_iter(n, k):
        buffer.append(label)
        if len(buffer) >= chunk_size:
            flush()
    flush()
    values = np.array(sorted(counts), dtype=np.float64)
    degs = tuple(counts[float(v)] for v in values)
    return CompressedObjective(values=values, degeneracies=degs, total=total)


def hamming_weight_spectrum(n: int, value_of_weight: Callable[[int], float]) -> CompressedObjective:
    """Analytic spectrum for objectives that depend only on the Hamming weight.

    The degeneracy of weight ``w`` is ``C(n, w)`` exactly, so this works for
    arbitrary ``n`` (the paper's ``n = 100`` Grover simulations target exactly
    this kind of structured objective).  Weights mapping to the same value are
    merged.
    """
    if n < 1:
        raise ValueError("n must be positive")
    counts: dict[float, int] = {}
    for w in range(n + 1):
        value = float(value_of_weight(w))
        counts[value] = counts.get(value, 0) + comb(n, w)
    values = np.array(sorted(counts), dtype=np.float64)
    degs = tuple(counts[float(v)] for v in values)
    return CompressedObjective(values=values, degeneracies=degs, total=1 << n)


def binomial_spectrum(values: Sequence[float], degeneracies: Sequence[int]) -> CompressedObjective:
    """Build a spectrum from explicit (value, degeneracy) pairs (synthetic workloads)."""
    order = np.argsort(np.asarray(values, dtype=np.float64))
    sorted_values = np.asarray(values, dtype=np.float64)[order]
    sorted_degs = tuple(int(degeneracies[i]) for i in order)
    return CompressedObjective(
        values=sorted_values,
        degeneracies=sorted_degs,
        total=sum(sorted_degs),
    )
