"""Grover-mixer compressed simulation: distinct objective values + degeneracies."""

from .compress import (
    CompressedObjective,
    binomial_spectrum,
    compress_objective,
    compress_streaming,
    compress_streaming_dicke,
    hamming_weight_spectrum,
)
from .simulate import (
    CompressedGroverResult,
    amplitudes_by_value,
    grover_expectation,
    grover_value_and_gradient,
    simulate_grover_compressed,
)

__all__ = [
    "CompressedObjective",
    "binomial_spectrum",
    "compress_objective",
    "compress_streaming",
    "compress_streaming_dicke",
    "hamming_weight_spectrum",
    "CompressedGroverResult",
    "amplitudes_by_value",
    "grover_expectation",
    "grover_value_and_gradient",
    "simulate_grover_compressed",
]
