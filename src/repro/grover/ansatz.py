"""A first-class compressed Grover-QAOA execution engine.

:mod:`repro.grover.simulate` holds the scalar compressed evolution (one angle
set at a time).  This module packages it as an engine with the same calling
surface as :class:`repro.core.ansatz.QAOAAnsatz` — ``expectation_batch``,
``value_and_gradient_batch``, ``loss``/``loss_and_gradient``, ``simulate``,
``random_angles``, ``counter`` — so every registered angle strategy that
drives the dense ansatz (grid search, random-restart BFGS, the vectorized
multi-start refiner, basinhopping, median) runs unchanged on the compressed
representation.

The state is a ``(D, M)`` complex matrix of per-value-class amplitudes
(``D`` = number of distinct objective values, ``M`` = batch size) instead of
``(2^n, M)``; every inner product is degeneracy-weighted.  Memory and time
per round are ``O(D * M)``, which is the paper's route to n ≈ 100
(Sec. 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.gradients import EvaluationCounter
from .compress import CompressedObjective

__all__ = ["CompressedGroverAnsatz", "CompressedSimulation"]


@dataclass
class CompressedSimulation:
    """Final compressed state of one Grover-QAOA evolution.

    The compressed analogue of :class:`repro.core.simulator.QAOAResult`:
    everything that reduces over value classes (expectation, optimal-state
    probability, value sampling) is exact; per-*label* quantities are not
    materializable without enumerating the space and raise with an
    explanation.
    """

    class_amplitudes: np.ndarray
    spectrum: CompressedObjective
    angles: np.ndarray
    maximize: bool = True
    _cache: dict = field(default_factory=dict, repr=False)

    def class_probabilities(self) -> np.ndarray:
        """Total probability of each objective-value class (sums to 1).

        These are the exact degeneracy-weighted sampling probabilities: every
        state in class ``j`` carries ``|class_amplitudes[j]|^2`` individually
        (Grover-mixer fair sampling), and there are ``degeneracies[j]`` of
        them.
        """
        if "class_probs" not in self._cache:
            degs = self.spectrum.degeneracy_array()
            self._cache["class_probs"] = degs * np.abs(self.class_amplitudes) ** 2
        return self._cache["class_probs"]

    def expectation(self) -> float:
        """``<C>`` over the feasible space."""
        return float(np.dot(self.class_probabilities(), self.spectrum.values))

    def ground_state_probability(self) -> float:
        """Probability of measuring any optimal state (by the recorded sense)."""
        idx = -1 if self.maximize else 0
        return float(self.class_probabilities()[idx])

    def norm(self) -> float:
        """Statevector norm (should be 1 up to round-off)."""
        return float(np.sqrt(self.class_probabilities().sum()))

    def probabilities(self) -> np.ndarray:
        """Unavailable: per-label probabilities need the enumerated space."""
        raise ValueError(
            "per-label probabilities are not materializable in the compressed "
            "representation; use class_probabilities() (per distinct objective "
            "value) or sample_values()"
        )

    def sample(self, shots: int, rng=None) -> np.ndarray:
        """Unavailable: label sampling needs the enumerated space."""
        raise ValueError(
            "label sampling is not materializable in the compressed "
            "representation; use sample_values() to draw objective values "
            "with the exact degeneracy-weighted probabilities"
        )

    def sample_values(
        self, shots: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw ``shots`` measured *objective values* from the final state."""
        if shots < 1:
            raise ValueError("shots must be positive")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        probs = self.class_probabilities()
        probs = probs / probs.sum()
        indices = rng.choice(probs.size, size=shots, p=probs)
        return self.spectrum.values[indices]


class _CompressedSchedule:
    """The tiny slice of ``MixerSchedule`` the angle strategies read.

    ``dim`` is the *compressed* dimension (number of distinct objective
    values) — deliberately, since that is the size of the matrices the
    batched strategy loops allocate against.
    """

    def __init__(self, dim: int, p: int):
        self.dim = int(dim)
        self.p = int(p)
        self.total_betas = int(p)


class CompressedGroverAnsatz:
    """Grover-mixer QAOA over a value spectrum, on the dense-ansatz protocol.

    Parameters
    ----------
    spectrum:
        The :class:`~repro.grover.compress.CompressedObjective` (distinct
        objective values + exact degeneracies) of the problem.
    p:
        Number of QAOA rounds.
    n:
        Number of qubits (reporting only; the evolution never touches 2^n).
    maximize:
        Optimization sense; determines which spectrum end is "optimal".
    backend:
        Optional array backend (recorded for the strategies' ``einsum``
        calls; compressed arrays are small, so NumPy is always fine).
    """

    def __init__(
        self,
        spectrum: CompressedObjective,
        p: int,
        *,
        n: int,
        maximize: bool = True,
        backend=None,
    ):
        if p < 1:
            raise ValueError("a QAOA needs at least one round")
        self.spectrum = spectrum
        self.maximize = bool(maximize)
        self._n = int(n)
        self.schedule = _CompressedSchedule(spectrum.num_distinct, p)
        self.initial_state = None
        if backend is None:
            from ..backend import active_backend

            backend = active_backend()
        self.backend = backend
        self.counter = EvaluationCounter()
        self._values = np.asarray(spectrum.values, dtype=np.float64)
        self._degs = spectrum.degeneracy_array()
        self._weighted_values = self._degs * self._values
        self._sqrt_total = float(np.sqrt(float(spectrum.total)))

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of QAOA rounds."""
        return self.schedule.p

    @property
    def num_angles(self) -> int:
        """Flat angle vector length (p betas then p gammas)."""
        return 2 * self.schedule.p

    @property
    def n(self) -> int:
        """Number of qubits."""
        return self._n

    @property
    def optimum(self) -> float:
        """Best objective value in the spectrum (by the optimization sense)."""
        return float(self._values[-1] if self.maximize else self._values[0])

    @property
    def cost(self):
        raise RuntimeError(
            "the compressed Grover engine has no dense cost object; strategies "
            "that rebuild per-round ansatze ('iterative', 'fourier') require "
            "the dense execution path"
        )

    def random_angles(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Uniformly random angles in ``[0, 2 pi)`` with the right length."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        return 2.0 * np.pi * rng.random(self.num_angles)

    # ------------------------------------------------------------------
    def _split(self, angles: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
        angles = np.asarray(angles, dtype=np.float64)
        if angles.ndim == 1:
            angles = angles[None, :]
        if angles.ndim != 2 or angles.shape[1] != self.num_angles:
            raise ValueError(
                f"expected an (M, {self.num_angles}) angle matrix "
                f"({self.p} betas + {self.p} gammas per row), got shape {angles.shape}"
            )
        transposed = np.ascontiguousarray(angles.T)
        return transposed[: self.p], transposed[self.p :], angles.shape[0]

    def _evolve_batch(
        self, betas: np.ndarray, gammas: np.ndarray, M: int, *, store_layers: bool = False
    ) -> tuple[np.ndarray, np.ndarray | None]:
        D = self.spectrum.num_distinct
        a = np.full((D, M), 1.0 / self._sqrt_total, dtype=np.complex128)
        layers = (
            np.empty((self.p, 2, D, M), dtype=np.complex128) if store_layers else None
        )
        neg_j_values = -1j * self._values
        for k in range(self.p):
            a *= np.exp(neg_j_values[:, None] * gammas[k][None, :])
            if layers is not None:
                layers[k, 0] = a
            overlap = self._degs @ a / self._sqrt_total  # (M,) <psi0|psi>
            a += ((np.exp(-1j * betas[k]) - 1.0) * overlap / self._sqrt_total)[None, :]
            if layers is not None:
                layers[k, 1] = a
        return a, layers

    def _energies(self, a: np.ndarray) -> np.ndarray:
        probs = np.abs(a)
        np.square(probs, out=probs)
        return self._weighted_values @ probs

    # ------------------------------------------------------------------
    def expectation(self, angles: np.ndarray) -> float:
        """``<C>`` at the given angles."""
        return float(self.expectation_batch(angles)[0])

    def expectation_batch(self, angles: np.ndarray) -> np.ndarray:
        """``<C>`` for every row of an ``(M, 2p)`` angle matrix."""
        betas, gammas, M = self._split(angles)
        self.counter.forward_passes += M
        final, _ = self._evolve_batch(betas, gammas, M)
        return self._energies(final)

    def value_and_gradient(self, angles: np.ndarray) -> tuple[float, np.ndarray]:
        """Expectation value and exact adjoint-mode gradient."""
        values, grads = self.value_and_gradient_batch(angles)
        return float(values[0]), grads[0]

    def value_and_gradient_batch(self, angles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched expectation values and exact degeneracy-weighted adjoint gradients.

        The batched analogue of
        :func:`repro.grover.simulate.grover_value_and_gradient`: every dense
        ``(dim, M)`` inner product of the adjoint recursion collapses to a
        degeneracy-weighted ``(D, M)`` reduction.  Shapes ``(M,)`` and
        ``(M, 2p)``.
        """
        betas, gammas, M = self._split(angles)
        self.counter.forward_passes += M
        final, layers = self._evolve_batch(betas, gammas, M, store_layers=True)
        energies = self._energies(final)

        degs = self._degs
        values = self._values
        sqrt_total = self._sqrt_total
        phi = final * values[:, None]
        grad_betas = np.empty((self.p, M), dtype=np.float64)
        grad_gammas = np.empty((self.p, M), dtype=np.float64)
        for k in range(self.p - 1, -1, -1):
            psi_k = layers[k, 1]
            chi_k = layers[k, 0]
            # 2 Im <phi | H_G | psi_k> with H_G = |psi0><psi0|: both weighted
            # sums against psi0 are plain degeneracy reductions.
            o_psi = degs @ psi_k / sqrt_total
            s_phi = degs @ phi
            grad_betas[k] = 2.0 * np.imag(np.conj(s_phi) * o_psi) / sqrt_total
            self.counter.hamiltonian_applications += M
            # phi <- exp(+i beta_k H_G) phi (the inverse Grover layer).
            phi += ((np.exp(1j * betas[k]) - 1.0) * (s_phi / sqrt_total) / sqrt_total)[
                None, :
            ]
            # 2 Im <phi | C | chi_k> with degeneracy-weighted vdots.
            grad_gammas[k] = 2.0 * (
                self._weighted_values
                @ (phi.real * chi_k.imag - phi.imag * chi_k.real)
            )
            if k:
                phi *= np.exp((1j * values)[:, None] * gammas[k][None, :])

        gradient = np.empty((M, self.num_angles), dtype=np.float64)
        gradient[:, : self.p] = grad_betas.T
        gradient[:, self.p :] = grad_gammas.T
        return energies, gradient

    # -- objective wrappers for minimizers ---------------------------------
    def loss(self, angles: np.ndarray) -> float:
        """Scalar to *minimize*: ``-<C>`` for maximization problems."""
        value = self.expectation(angles)
        return -value if self.maximize else value

    def loss_and_gradient(self, angles: np.ndarray) -> tuple[float, np.ndarray]:
        """Loss and its gradient (signs consistent with :meth:`loss`)."""
        value, grad = self.value_and_gradient(angles)
        if self.maximize:
            return -value, -grad
        return value, grad

    def loss_and_gradient_batch(self, angles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched loss and gradient (signs consistent with :meth:`loss`)."""
        values, grads = self.value_and_gradient_batch(angles)
        if self.maximize:
            return -values, -grads
        return values, grads

    def simulate(self, angles: np.ndarray) -> CompressedSimulation:
        """Full evolution returning a :class:`CompressedSimulation`."""
        angles = np.asarray(angles, dtype=np.float64).ravel()
        betas, gammas, M = self._split(angles)
        final, _ = self._evolve_batch(betas, gammas, M)
        return CompressedSimulation(
            class_amplitudes=final[:, 0].copy(),
            spectrum=self.spectrum,
            angles=angles.copy(),
            maximize=self.maximize,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompressedGroverAnsatz(n={self.n}, distinct={self.spectrum.num_distinct}, "
            f"p={self.p}, maximize={self.maximize})"
        )
